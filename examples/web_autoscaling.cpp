// Web autoscaling walkthrough (the paper's Section V-B1 scenario, condensed).
//
// Runs two days of the Wikipedia-model workload at reduced scale under the
// adaptive policy and prints an hourly timeline: expected arrival rate,
// instances provisioned, and cumulative rejection — the dynamics behind
// Figure 5 rendered as text.
//
// Try: ./web_autoscaling            (defaults)
//      ./web_autoscaling 0.1 7      (scale 0.1, full week)
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "cloud/broker.h"
#include "core/adaptive_policy.h"
#include "core/application_provisioner.h"
#include "experiment/scenario.h"
#include "predict/periodic_profile.h"

using namespace cloudprov;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  const int days = argc > 2 ? std::atoi(argv[2]) : 2;

  ScenarioConfig config = web_scenario(scale);
  config.horizon = days * duration::kDay;
  config.web.horizon = config.horizon;

  Simulation sim;
  Datacenter datacenter(sim, config.datacenter,
                        std::make_unique<LeastLoadedPlacement>());
  ProvisionerConfig prov_config;
  prov_config.initial_service_time_estimate = config.initial_service_time_estimate;
  ApplicationProvisioner provisioner(sim, datacenter, config.qos, prov_config);

  WebWorkload workload(config.web);
  Broker broker(sim, workload, provisioner, Rng(2011));

  // The paper's six-period time-based predictor, derived from the model.
  auto predictor = std::make_shared<PeriodicProfilePredictor>(
      web_profile_predictor(config.web));
  AdaptivePolicy policy(sim, predictor, config.modeler, config.analyzer);
  policy.attach(provisioner);
  broker.start();

  std::printf("hour | expected req/s | instances | rejected so far\n");
  std::printf("-----+----------------+-----------+----------------\n");
  for (int hour = 0; hour <= days * 24; ++hour) {
    sim.schedule_at(hour * duration::kHour, [&, hour] {
      std::printf("%4d | %14.1f | %9zu | %llu\n", hour,
                  predictor->predict(sim.now()), provisioner.live_instances(),
                  static_cast<unsigned long long>(provisioner.rejected()));
    });
  }
  sim.run(config.horizon);

  std::printf("\nsummary over %d day(s) at scale %.2f:\n", days, scale);
  std::printf("  requests:    %llu (%.4f%% rejected)\n",
              static_cast<unsigned long long>(broker.generated()),
              100.0 * provisioner.rejection_rate());
  std::printf("  response:    %.1f ms mean, %.1f ms p99 (Ts = %.0f ms)\n",
              1e3 * provisioner.response_time_stats().mean(),
              1e3 * provisioner.response_p99(),
              1e3 * config.qos.max_response_time);
  std::printf("  violations:  %llu\n",
              static_cast<unsigned long long>(provisioner.qos_violations()));
  std::printf("  VM hours:    %.1f at %.1f%% utilization\n",
              datacenter.vm_hours(), 100.0 * datacenter.utilization());
  return 0;
}
