// Offline capacity planning with the analytic layer alone — no simulation.
//
// Uses the queueing library and Algorithm 1 exactly the way the paper's load
// predictor and performance modeler does, to answer what-if questions:
// "how many 1-core instances do I need for lambda req/s at a Ts-second
// response bound?" and "what do rejection and response time look like if I
// deploy fewer?".
#include <cstdio>

#include "core/performance_modeler.h"
#include "queueing/instance_pool_model.h"
#include "queueing/mmc.h"

using namespace cloudprov;

int main() {
  // Service profile: 105 ms mean request execution time (the paper's web
  // application), 250 ms negotiated response time => k = 2.
  const double mean_service_time = 0.105;
  QosTargets qos;
  qos.max_response_time = 0.250;
  qos.min_utilization = 0.80;
  const std::size_t k = queue_bound(qos.max_response_time, mean_service_time);
  std::printf("service time %.0f ms, Ts %.0f ms  =>  queue bound k = %zu\n\n",
              1e3 * mean_service_time, 1e3 * qos.max_response_time, k);

  ModelerConfig modeler_config;
  modeler_config.max_vms = 8000;
  PerformanceModeler modeler(qos, modeler_config);

  std::printf("%-12s %-12s %-14s %-16s %-12s\n", "lambda(r/s)", "instances",
              "pred. reject", "pred. resp (ms)", "offered rho");
  for (double lambda : {100.0, 250.0, 400.0, 600.0, 900.0, 1200.0, 2000.0}) {
    const ModelerDecision d =
        modeler.required_instances(1, lambda, mean_service_time, k);
    std::printf("%-12.0f %-12zu %-14.4f %-16.1f %-12.3f\n", lambda, d.instances,
                d.predicted_rejection, 1e3 * d.predicted_response_time,
                d.predicted_utilization);
  }

  // What-if: deploy less than the recommendation at lambda = 1200.
  std::printf("\nunder-provisioning at lambda = 1200 req/s:\n");
  std::printf("%-12s %-14s %-16s %-14s\n", "instances", "pred. reject",
              "pred. resp (ms)", "throughput r/s");
  for (std::size_t m : {100u, 120u, 140u, 150u, 160u}) {
    queueing::InstancePoolModel pool;
    pool.total_arrival_rate = 1200.0;
    pool.service_rate = 1.0 / mean_service_time;
    pool.instances = m;
    pool.queue_capacity = k;
    const auto metrics = queueing::solve_instance_pool(pool);
    std::printf("%-12zu %-14.4f %-16.1f %-14.1f\n", m,
                metrics.rejection_probability, 1e3 * metrics.mean_response_time,
                metrics.total_throughput);
  }

  // Sanity anchor: an M/M/c model of the same aggregate system (no per-VM
  // queue bound) for the recommended size.
  const ModelerDecision rec = modeler.required_instances(1, 1200.0,
                                                         mean_service_time, k);
  const auto mmc_view =
      queueing::mmc(1200.0, 1.0 / mean_service_time, rec.instances);
  std::printf(
      "\naggregate M/M/%zu cross-check: W = %.1f ms, wait probability via "
      "Erlang C baked into Wq = %.2f ms\n",
      rec.instances, 1e3 * mmc_view.mean_response_time,
      1e3 * mmc_view.mean_waiting_time);
  return 0;
}
