// Command-line scenario runner: the library's experiment harness exposed as
// a single configurable binary, the way a downstream user would script it.
//
//   ./run_scenario --workload web --policy adaptive --scale 0.05 --reps 3
//   ./run_scenario --workload scientific --policy static --instances 45
//   ./run_scenario --workload web --policy adaptive --predictor ewma \
//                  --interval 30 --csv out.csv --decisions decisions.csv
//   ./run_scenario --workload web --scale 0.01 --metrics-out metrics.csv \
//                  --trace-out trace.json           # Perfetto-loadable trace
//   ./run_scenario --workload web --scale 0.01 --trace-sample-rate 0.05 \
//                  --spans-out spans.csv --drift-out drift.csv \
//                  --slo-out slo.csv               # observability monitors
//   ./run_scenario --reps 8 --parallelism 0         # one worker per core
//   ./run_scenario --workload scientific --policy static --instances 45 \
//                  --vm-mtbf 6 --host-mtbf 48 --reconcile 30   # self-healing
//   ./run_scenario --workload web --spot-frac 0.5 --bid 0.7 --reconcile 60 \
//                  --market-out market.csv        # spot-market provisioning
//   ./run_scenario --workload web --lookahead 5,3 --spot-frac 0.5 --bid 0.7 \
//                  --lookahead-bids 0.45,1.0      # model-predictive sizing
//   ./run_scenario --workload web --checkpoint world.ckpt --checkpoint-at 43200
//   ./run_scenario --workload web --restore world.ckpt    # same config + seed
//   ./run_scenario --workload web --timeout 0.2 --retry 3:jitter:0.05:1 \
//                  --retry-budget 0.1 --breaker 0.5:32:5:3 \
//                  --shed deadline,brownout:0.9:0.5:1   # request-path resilience
//   ./run_scenario --workload web --scale 0.01 --profile \
//                  --profile-out prof --manifest-out run.json  # wall profile
//   ./run_scenario --tenants 64 --shards 4 --tenant-capacity 128 \
//                  --tenant-out tenants.csv --manifest-out mt.json \
//                  # sharded multi-tenant scale-out (bit-identical per shard)
//   ./run_scenario --workload zipf --tiers --zipf 0.9 --keys 20000 \
//                  --ttl 300 --cache-vm 4        # cache + backend tiers
//   ./run_scenario --workload zipf --tiers --flush-at 43200 \
//                  --cache-crash-at 21600        # TTL storm + warmup transient
#include <fstream>
#include <iostream>
#include <sstream>

#include "experiment/manifest.h"
#include "experiment/multi_tenant.h"
#include "experiment/report.h"
#include "experiment/runner.h"
#include "experiment/world.h"
#include "lookahead/checkpoint.h"
#include "profile/profile_export.h"
#include "profile/wall_profiler.h"
#include "telemetry/export.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"

using namespace cloudprov;

namespace {

PredictorKind parse_predictor(const std::string& name) {
  if (name == "profile") return PredictorKind::kProfile;
  if (name == "oracle") return PredictorKind::kOracle;
  if (name == "ewma") return PredictorKind::kEwma;
  if (name == "moving-average") return PredictorKind::kMovingAverage;
  if (name == "ar") return PredictorKind::kAr;
  if (name == "qrsm") return PredictorKind::kQrsm;
  throw std::invalid_argument("unknown predictor: " + name);
}

void write_decisions_csv(const std::string& path,
                         const std::vector<AdaptivePolicy::DecisionRecord>& decisions) {
  std::ofstream out(path);
  CsvWriter csv(out);
  csv.write_header({"time", "expected_rate", "monitored_service_time",
                    "queue_bound", "target_instances", "achieved_instances"});
  for (const auto& d : decisions) {
    csv.write_row({CsvWriter::format(d.time), CsvWriter::format(d.expected_rate),
                   CsvWriter::format(d.monitored_service_time),
                   CsvWriter::format(static_cast<std::int64_t>(d.queue_bound)),
                   CsvWriter::format(static_cast<std::int64_t>(d.target_instances)),
                   CsvWriter::format(
                       static_cast<std::int64_t>(d.achieved_instances))});
  }
  std::cout << "decision timeline written to " << path << '\n';
}

std::vector<double> parse_double_list(const std::string& spec,
                                      const std::string& flag) {
  std::vector<double> values;
  std::stringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    try {
      values.push_back(std::stod(item));
    } catch (const std::exception&) {
      throw std::invalid_argument("bad " + flag + " entry: " + item);
    }
  }
  return values;
}

std::vector<std::string> split_colon(const std::string& spec) {
  std::vector<std::string> parts;
  std::stringstream in(spec);
  std::string item;
  while (std::getline(in, item, ':')) parts.push_back(item);
  return parts;
}

void parse_retry_spec(const std::string& spec, RetryPolicyConfig* retry) {
  const std::vector<std::string> parts = split_colon(spec);
  try {
    retry->max_attempts = std::stoul(parts.at(0));
    if (parts.size() > 1) {
      if (parts[1] == "fixed") {
        retry->backoff = RetryPolicyConfig::Backoff::kFixed;
      } else if (parts[1] == "jitter") {
        retry->backoff = RetryPolicyConfig::Backoff::kExpoJitter;
      } else {
        throw std::invalid_argument("kind must be fixed | jitter");
      }
    }
    if (parts.size() > 2) retry->base = std::stod(parts[2]);
    if (parts.size() > 3) retry->cap = std::stod(parts[3]);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("bad --retry spec: " + spec);
  }
}

void parse_budget_spec(const std::string& spec, RetryBudgetConfig* budget) {
  const std::vector<std::string> parts = split_colon(spec);
  try {
    budget->enabled = true;
    budget->ratio = std::stod(parts.at(0));
    if (parts.size() > 1) budget->burst = std::stod(parts[1]);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("bad --retry-budget spec: " + spec);
  }
}

void parse_breaker_spec(const std::string& spec, CircuitBreakerConfig* breaker) {
  const std::vector<std::string> parts = split_colon(spec);
  try {
    breaker->enabled = true;
    breaker->failure_threshold = std::stod(parts.at(0));
    if (parts.size() > 1) breaker->window = std::stoul(parts[1]);
    if (parts.size() > 2) breaker->open_duration = std::stod(parts[2]);
    if (parts.size() > 3) breaker->half_open_probes = std::stoul(parts[3]);
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("bad --breaker spec: " + spec);
  }
}

void parse_shed_spec(const std::string& spec, ShedConfig* shed) {
  std::stringstream in(spec);
  std::string mechanism;
  while (std::getline(in, mechanism, ',')) {
    const std::vector<std::string> parts = split_colon(mechanism);
    try {
      if (parts.at(0) == "deadline") {
        shed->deadline_enabled = true;
      } else if (parts[0] == "brownout") {
        shed->brownout_enabled = true;
        if (parts.size() > 1) shed->brownout_utilization = std::stod(parts[1]);
        if (parts.size() > 2) shed->brownout_fraction = std::stod(parts[2]);
        if (parts.size() > 3) shed->brownout_priority = std::stoi(parts[3]);
      } else {
        throw std::invalid_argument("mechanism must be deadline | brownout");
      }
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("bad --shed spec: " + spec);
    }
  }
}

/// Replication-0 runner that supports the checkpoint/restore flags: either
/// resumes a World from a checkpoint file, or runs fresh and optionally
/// drops a checkpoint mid-flight before continuing to the horizon.
RunOutput run_replication_zero(const ScenarioConfig& config,
                               const PolicySpec& policy, std::uint64_t seed,
                               const std::optional<TelemetryOptions>& telemetry,
                               const std::string& restore_path,
                               const std::string& checkpoint_path,
                               double checkpoint_at, WallProfiler* profiler) {
  if (!restore_path.empty()) {
    const WorldState state = read_checkpoint_file(restore_path);
    std::cerr << "restored " << restore_path << " at t=" << fmt(state.now, 1)
              << " s (" << state.executed_events << " events executed)\n";
    World world(config, policy, seed, state, World::Overrides{}, profiler);
    world.run_to(config.horizon);
    return world.finish();
  }
  World world(config, policy, seed, telemetry, profiler);
  world.start();
  if (!checkpoint_path.empty()) {
    world.run_to(checkpoint_at);
    write_checkpoint_file(checkpoint_path, world.snapshot());
    std::cout << "checkpoint written to " << checkpoint_path << " (t="
              << fmt(world.now(), 1) << " s)\n";
  }
  world.run_to(config.horizon);
  return world.finish();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args("Runs one provisioning scenario and reports the paper's metrics.");
  args.add_flag("workload", "web", "web | scientific | zipf", "<name>");
  args.add_flag("policy", "adaptive", "adaptive | static", "<name>");
  args.add_flag("instances", "50", "pool size for --policy static (paper scale)",
                "<int>");
  args.add_flag("predictor", "profile",
                "profile | oracle | ewma | moving-average | ar | qrsm", "<name>");
  args.add_flag("scale", "0.05", "workload scale factor", "<double>");
  args.add_flag("days", "0", "override horizon in days (0 = scenario default)",
                "<int>");
  args.add_flag("reps", "1", "replications", "<int>");
  args.add_flag("seed", "42", "base random seed", "<int>");
  args.add_flag("parallelism", "1",
                "replication worker threads (0 = one per hardware thread)",
                "<int>");
  args.add_flag("tenants", "0",
                "multi-tenant mode: run this many independent applications "
                "against one shared capacity pool instead of a single "
                "scenario (0 = off; see --shards/--tenant-*)",
                "<int>");
  args.add_flag("shards", "1",
                "worker shards for --tenants: tenants are partitioned across "
                "this many event kernels, barrier-synced every analysis "
                "window; results are bit-identical for every value",
                "<int>");
  args.add_flag("tenant-capacity", "0",
                "shared instance slots arbitrated across all tenants per "
                "window (0 = 4 per tenant)",
                "<int>");
  args.add_flag("tenant-cap", "0",
                "static per-tenant instance ceiling (0 = none)", "<int>");
  args.add_flag("tenant-zipf-frac", "0",
                "fraction of tenants running the Zipf key-value workload",
                "<frac>");
  args.add_flag("tenant-tiers", "false",
                "run Zipf tenants with the cache tier in front of the "
                "backend (src/apptier); implied by --tenant-zipf-frac");
  args.add_flag("tenant-bot-frac", "0.25",
                "fraction of tenants running the BoT/scientific workload",
                "<double>");
  args.add_flag("tenant-scale", "0.002",
                "mean per-tenant workload scale (jittered per tenant)",
                "<double>");
  args.add_flag("traced-tenants", "0",
                "give tenants [0, N) full span tracing at --trace-sample-rate",
                "<int>");
  args.add_flag("tenant-out", "",
                "write the per-tenant metrics CSV here (multi-tenant mode)",
                "<path>");
  args.add_flag("interval", "0", "analysis interval override in seconds (0 = default)",
                "<double>");
  args.add_flag("tolerance", "0", "modeler rejection tolerance override (0 = default)",
                "<double>");
  args.add_flag("max-vms", "0", "MaxVMs override (0 = default)", "<int>");
  args.add_flag("tiers", "false",
                "run the application as cache + backend tiers (src/apptier): "
                "look-aside cache pool in front of the backend, per-tier "
                "Algorithm 1 under --policy adaptive; implied by the other "
                "cache flags");
  args.add_flag("zipf", "0.9",
                "Zipf popularity skew for --workload zipf (0 = uniform)",
                "<double>");
  args.add_flag("keys", "20000", "key-space size for --workload zipf",
                "<int>");
  args.add_flag("ttl", "300",
                "cache-entry time-to-live in seconds (lazy expiry at lookup)",
                "<double>");
  args.add_flag("cache-vm", "4",
                "initial cache pool size; stays fixed under --policy static, "
                "re-planned every window by the tiered provisioner otherwise",
                "<int>");
  args.add_flag("flush-at", "",
                "TTL-storm times \"t0[,t1...]\" in seconds: flush the whole "
                "cache directory so the backend eats the full arrival rate",
                "<spec>");
  args.add_flag("cache-crash-at", "",
                "seeded cache-VM crash times \"t0[,t1...]\" in seconds "
                "(slot remap invalidates resident entries: warmup transient)",
                "<spec>");
  args.add_flag("apptier-out", "",
                "write the per-replication cache-tier metrics as CSV here",
                "<path>");
  args.add_flag("lookahead", "",
                "model-predictive provisioning \"K,H\": at each analysis "
                "window fork up to K what-if clones of the world, score each "
                "candidate pool size H windows ahead, commit the cheapest "
                "QoS-feasible one (empty = off; uses --predictor)",
                "<K,H>");
  args.add_flag("lookahead-bids", "",
                "comma-separated spot bids the lookahead search may switch "
                "to (requires --lookahead and a live spot market)",
                "<list>");
  args.add_flag("vm-mtbf", "0",
                "per-instance mean time between crash-failures in hours "
                "(0 = no VM crashes)",
                "<double>");
  args.add_flag("host-mtbf", "0",
                "per-occupied-host MTBF in hours; a host crash kills every "
                "VM on it (0 = no host crashes)",
                "<double>");
  args.add_flag("boot-fail-prob", "0",
                "probability a new VM never finishes booting", "<double>");
  args.add_flag("boot-straggler", "0",
                "probability a boot is a heavy-tailed straggler", "<double>");
  args.add_flag("outage", "",
                "IaaS allocation outage windows \"t0:t1[,t0:t1...]\" in "
                "seconds (create_vm fails inside them)",
                "<spec>");
  args.add_flag("boot-delay", "0", "VM boot delay in seconds", "<double>");
  args.add_flag("boot-timeout", "0",
                "boot watchdog: fail instances still booting after this many "
                "seconds (0 = off)",
                "<double>");
  args.add_flag("reconcile", "0",
                "self-healing reconciler check interval in seconds (0 = off)",
                "<double>");
  args.add_flag("timeout", "0",
                "client per-attempt timeout in seconds: admitted attempts not "
                "completed in time are abandoned (0 = off)",
                "<double>");
  args.add_flag("request-deadline", "0",
                "total client deadline per logical request in seconds, from "
                "first arrival; also readable by --shed deadline (0 = off)",
                "<double>");
  args.add_flag("retry", "",
                "client retry policy \"max[:kind[:base[:cap]]]\": max total "
                "attempts (0 = unbounded), kind fixed | jitter, backoff "
                "base/cap in seconds (e.g. 3:jitter:0.05:1)",
                "<spec>");
  args.add_flag("retry-budget", "",
                "token-bucket retry budget \"ratio[:burst]\": retries may not "
                "exceed ratio of fresh traffic (e.g. 0.1:10)",
                "<spec>");
  args.add_flag("breaker", "",
                "circuit breaker \"thresh[:window[:open_s[:probes]]]\": open "
                "at this failure fraction over the outcome window, stay open "
                "open_s seconds, then admit probes (e.g. 0.5:32:5:3)",
                "<spec>");
  args.add_flag("shed", "",
                "server-side load shedding, comma list of \"deadline\" and "
                "\"brownout[:util[:frac[:prio]]]\" (e.g. "
                "deadline,brownout:0.9:0.5:1)",
                "<spec>");
  args.add_flag("resilience-out", "",
                "write the per-replication resilience metrics as CSV here",
                "<path>");
  args.add_flag("market", "false",
                "buy capacity from the IaaS market (src/market) instead of "
                "conjuring uniform VMs; implied by the other market flags");
  args.add_flag("spot-frac", "0",
                "cap on the spot share of the commanded pool "
                "(0 = pure on-demand)",
                "<double>");
  args.add_flag("bid", "0",
                "spot bid in currency per instance-hour (on-demand lists at "
                "1.0/h, spot at 0.35/h); 0 disables spot purchases",
                "<double>");
  args.add_flag("spot-notice", "120",
                "revocation notice window in seconds before the hard kill",
                "<double>");
  args.add_flag("reserved", "0",
                "base-load slots bought as reserved capacity (term-billed)",
                "<int>");
  args.add_flag("market-out", "",
                "write the market ledger + realized spot path of "
                "replication 0 as CSV here",
                "<path>");
  args.add_flag("csv", "", "write aggregate metrics CSV here", "<path>");
  args.add_flag("decisions", "", "write the adaptive decision timeline CSV here",
                "<path>");
  args.add_flag("trace-out", "",
                "write a Chrome trace-format JSON of replication 0 here "
                "(load in chrome://tracing or ui.perfetto.dev)",
                "<path>");
  args.add_flag("metrics-out", "",
                "write the telemetry metrics registry of replication 0 here",
                "<path>");
  args.add_flag("metrics-format", "csv",
                "metrics registry output format: csv | prom "
                "(Prometheus text exposition)",
                "<name>");
  args.add_flag("trace-capacity", "65536",
                "trace ring capacity in events (oldest dropped beyond this)",
                "<int>");
  args.add_flag("trace-sample-rate", "0",
                "fraction of requests given full lifecycle spans in "
                "replication 0 (deterministic per-request hash; 0 = off)",
                "<double>");
  args.add_flag("spans-out", "",
                "write the sampled request spans of replication 0 as CSV here "
                "(requires --trace-sample-rate > 0)",
                "<path>");
  args.add_flag("drift-out", "",
                "write the model-drift observatory CSV of replication 0 here "
                "(predicted vs observed per analysis window)",
                "<path>");
  args.add_flag("slo-out", "",
                "write the SLO burn-rate samples of replication 0 as CSV "
                "here (also enables burn-rate alerting)",
                "<path>");
  args.add_flag("profile", "false",
                "attribute replication 0's wall time to subsystems and print "
                "the breakdown (output-only: metrics stay bit-identical); "
                "implied by --profile-out / --manifest-out");
  args.add_flag("profile-out", "",
                "profile artifact base path: writes <base>.csv (long-form "
                "profile), <base>.trace.json (Chrome-trace counter tracks), "
                "and <base>.folded (flamegraph folded stacks)",
                "<base>");
  args.add_flag("manifest-out", "",
                "write a run provenance manifest JSON here (build info, "
                "scenario spec, seed streams, metrics, wall-time breakdown); "
                "diff two with bench/compare_runs.py",
                "<path>");
  args.add_flag("profile-interval", "0.1",
                "wall seconds between engine profile snapshots", "<double>");
  args.add_flag("checkpoint", "",
                "write a binary snapshot of replication 0's world here at "
                "--checkpoint-at, then keep running to the horizon",
                "<path>");
  args.add_flag("checkpoint-at", "0",
                "simulation time in seconds at which --checkpoint snapshots "
                "(0 = half the horizon)",
                "<double>");
  args.add_flag("restore", "",
                "resume replication 0 from a checkpoint file instead of "
                "starting at t=0; the workload, policy, and seed flags must "
                "match the run that wrote it (checkpoints carry no config)",
                "<path>");
  args.add_flag("log", "warn", "log level", "<level>");
  args.add_flag("log-file", "", "redirect log lines from stderr to this file",
                "<path>");
  if (!args.parse(argc, argv)) return 0;
  Logger::instance().set_level(Logger::parse_level(args.get_string("log")));
  if (const std::string path = args.get_string("log-file"); !path.empty()) {
    if (!Logger::instance().set_sink_file(path)) {
      std::cerr << "cannot open log file " << path << '\n';
      return 1;
    }
  }

  const std::string workload_name = args.get_string("workload");
  ScenarioConfig config =
      workload_name == "scientific" ? scientific_scenario(args.get_double("scale"))
      : workload_name == "zipf"     ? zipf_scenario(args.get_double("scale"))
                                    : web_scenario(args.get_double("scale"));
  if (const auto days = args.get_int("days"); days > 0) {
    config.horizon = static_cast<double>(days) * 86400.0;
    config.web.horizon = config.horizon;
    config.bot.horizon = config.horizon;
    config.zipf.horizon = config.horizon;
  }
  config.zipf.alpha = args.get_double("zipf");
  config.zipf.num_keys = static_cast<std::uint64_t>(args.get_int("keys"));
  config.apptier.enabled = args.get_bool("tiers") || args.was_set("ttl") ||
                           args.was_set("cache-vm") ||
                           args.was_set("flush-at") ||
                           args.was_set("cache-crash-at");
  config.apptier.ttl = args.get_double("ttl");
  config.apptier.cache_vms = static_cast<std::size_t>(args.get_int("cache-vm"));
  if (const std::string spec = args.get_string("flush-at"); !spec.empty()) {
    config.apptier.flush_at = parse_double_list(spec, "--flush-at");
  }
  if (const std::string spec = args.get_string("cache-crash-at");
      !spec.empty()) {
    config.apptier.cache_crash_at = parse_double_list(spec, "--cache-crash-at");
  }
  if (const double interval = args.get_double("interval"); interval > 0.0) {
    config.analyzer.analysis_interval = interval;
    config.analyzer.lead_time = interval;
  }
  if (const double tolerance = args.get_double("tolerance"); tolerance > 0.0) {
    config.modeler.rejection_tolerance = tolerance;
  }
  if (const auto max_vms = args.get_int("max-vms"); max_vms > 0) {
    config.modeler.max_vms = static_cast<std::size_t>(max_vms);
  }
  config.fault.vm_mtbf = args.get_double("vm-mtbf") * 3600.0;
  config.fault.host_mtbf = args.get_double("host-mtbf") * 3600.0;
  config.fault.boot_fail_prob = args.get_double("boot-fail-prob");
  config.fault.straggler_prob = args.get_double("boot-straggler");
  if (const std::string spec = args.get_string("outage"); !spec.empty()) {
    config.fault.outages = parse_outage_windows(spec);
  }
  config.datacenter.vm_boot_delay = args.get_double("boot-delay");
  config.boot_timeout = args.get_double("boot-timeout");
  if (const double interval = args.get_double("reconcile"); interval > 0.0) {
    config.reconciler.enabled = true;
    config.reconciler.interval = interval;
  }
  if (const double timeout = args.get_double("timeout"); timeout > 0.0) {
    config.resilience.attempt_timeout = timeout;
    config.resilience.enabled = true;
  }
  if (const double deadline = args.get_double("request-deadline");
      deadline > 0.0) {
    config.resilience.request_deadline = deadline;
    config.resilience.enabled = true;
  }
  if (const std::string spec = args.get_string("retry"); !spec.empty()) {
    parse_retry_spec(spec, &config.resilience.retry);
    config.resilience.enabled = true;
  }
  if (const std::string spec = args.get_string("retry-budget"); !spec.empty()) {
    parse_budget_spec(spec, &config.resilience.budget);
    config.resilience.enabled = true;
  }
  if (const std::string spec = args.get_string("breaker"); !spec.empty()) {
    parse_breaker_spec(spec, &config.resilience.breaker);
    config.resilience.enabled = true;
  }
  if (const std::string spec = args.get_string("shed"); !spec.empty()) {
    parse_shed_spec(spec, &config.resilience.shed);
    config.resilience.enabled = true;
  }
  const std::string market_path = args.get_string("market-out");
  config.market.enabled = args.get_bool("market") || args.was_set("spot-frac") ||
                          args.was_set("bid") || args.was_set("reserved") ||
                          !market_path.empty();
  config.market.acquisition.spot_fraction = args.get_double("spot-frac");
  config.market.acquisition.bid = args.get_double("bid");
  config.market.acquisition.reserved_pool =
      static_cast<std::size_t>(args.get_int("reserved"));
  config.market.revocation.notice = args.get_double("spot-notice");

  PolicySpec policy =
      args.get_string("policy") == "static"
          ? PolicySpec::fixed(static_cast<std::size_t>(args.get_int("instances")))
          : PolicySpec::adaptive(parse_predictor(args.get_string("predictor")));
  if (const std::string spec = args.get_string("lookahead"); !spec.empty()) {
    const auto comma = spec.find(',');
    if (comma == std::string::npos) {
      std::cerr << "--lookahead expects \"K,H\" (e.g. 5,3), got: " << spec
                << '\n';
      return 1;
    }
    policy = PolicySpec::lookahead_spec(
        std::stoul(spec.substr(0, comma)), std::stoul(spec.substr(comma + 1)),
        parse_predictor(args.get_string("predictor")),
        parse_double_list(args.get_string("lookahead-bids"),
                          "--lookahead-bids"));
  }

  const auto reps = static_cast<std::size_t>(args.get_int("reps"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));
  const auto parallelism = static_cast<std::size_t>(args.get_int("parallelism"));

  const std::string checkpoint_path = args.get_string("checkpoint");
  const std::string restore_path = args.get_string("restore");
  double checkpoint_at = args.get_double("checkpoint-at");
  if (checkpoint_at <= 0.0) checkpoint_at = config.horizon / 2.0;
  if ((!checkpoint_path.empty() || !restore_path.empty()) && reps != 1) {
    std::cerr << "--checkpoint/--restore snapshot a single world; "
                 "use --reps 1\n";
    return 1;
  }

  const std::string trace_path = args.get_string("trace-out");
  const std::string metrics_path = args.get_string("metrics-out");
  const std::string metrics_format = args.get_string("metrics-format");
  if (metrics_format != "csv" && metrics_format != "prom") {
    std::cerr << "unknown --metrics-format: " << metrics_format << '\n';
    return 1;
  }
  const std::string decisions_path = args.get_string("decisions");
  const std::string spans_path = args.get_string("spans-out");
  const std::string drift_path = args.get_string("drift-out");
  const std::string slo_path = args.get_string("slo-out");
  const double sample_rate = args.get_double("trace-sample-rate");
  std::optional<TelemetryOptions> telemetry_opts;
  if (!trace_path.empty() || !metrics_path.empty() || !spans_path.empty() ||
      !drift_path.empty() || !slo_path.empty() || sample_rate > 0.0) {
    TelemetryOptions opts;
    opts.trace_capacity =
        static_cast<std::size_t>(args.get_int("trace-capacity"));
    opts.span_sample_rate = sample_rate;
    opts.span_seed = seed;
    opts.drift_enabled = !drift_path.empty();
    opts.drift.qos_max_response_time = config.qos.max_response_time;
    opts.slo_enabled = !slo_path.empty();
    telemetry_opts = opts;
  }

  const std::string profile_path = args.get_string("profile-out");
  const std::string manifest_path = args.get_string("manifest-out");
  const bool profiling = args.get_bool("profile") || !profile_path.empty() ||
                         !manifest_path.empty();
  std::optional<WallProfiler> profiler;
  if (profiling) profiler.emplace(args.get_double("profile-interval"));
  WallProfiler* prof = profiler.has_value() ? &*profiler : nullptr;

  // Multi-tenant mode is its own execution path: N applications, one shared
  // capacity pool, sharded window execution (src/experiment/multi_tenant).
  // The single-scenario workload/policy/replication flags do not apply.
  if (const auto tenants = static_cast<std::size_t>(args.get_int("tenants"));
      tenants > 0) {
    MultiTenantConfig mt;
    mt.tenants = tenants;
    mt.seed = seed;
    if (const auto days = args.get_int("days"); days > 0) {
      mt.horizon = static_cast<double>(days) * 86400.0;
    }
    if (const double interval = args.get_double("interval"); interval > 0.0) {
      mt.window = interval;
    }
    mt.bot_fraction = args.get_double("tenant-bot-frac");
    mt.zipf_fraction = args.get_double("tenant-zipf-frac");
    mt.zipf_tiers =
        args.get_bool("tenant-tiers") || args.was_set("tenant-zipf-frac");
    mt.tenant_scale = args.get_double("tenant-scale");
    mt.capacity = static_cast<std::size_t>(args.get_int("tenant-capacity"));
    mt.per_tenant_cap = static_cast<std::size_t>(args.get_int("tenant-cap"));
    mt.market_enabled = config.market.enabled;
    mt.spot_fraction = config.market.acquisition.spot_fraction;
    mt.bid = config.market.acquisition.bid;

    MultiTenantOptions options;
    options.shards = static_cast<std::size_t>(args.get_int("shards"));
    options.traced_tenants =
        static_cast<std::size_t>(args.get_int("traced-tenants"));
    options.span_sample_rate = sample_rate > 0.0 ? sample_rate : 1.0;
    options.profiler = prof;

    const MultiTenantResult result = run_multi_tenant(mt, options);
    std::cout << "multi-tenant: " << result.tenants.size() << " tenants, "
              << result.shards << " shard(s), " << result.windows
              << " windows, shared capacity " << result.capacity << "\n\n";
    print_policy_table(std::cout, {aggregate({result.aggregate})});
    if (result.aggregate.cache_hits + result.aggregate.cache_misses > 0) {
      std::cout << "\ncache tier (Zipf tenants): hit ratio "
                << fmt(result.aggregate.cache_hit_ratio, 3) << " ("
                << result.aggregate.cache_hits << " hits / "
                << result.aggregate.cache_misses << " misses), "
                << fmt(result.aggregate.cache_vm_hours, 2)
                << " cache VM-hours\n";
    }
    std::cout << "\ncontention: peak granted " << result.peak_granted << "/"
              << result.capacity << ", grant clips " << result.grant_clips
              << ", instances denied " << result.instances_denied << '\n'
              << result.simulated_events << " events in "
              << fmt(result.wall_seconds, 2) << " s ("
              << fmt(result.wall_seconds > 0.0
                         ? static_cast<double>(result.simulated_events) /
                               result.wall_seconds
                         : 0.0,
                     0)
              << " events/s across " << result.shards << " kernel(s))\n";
    if (const std::string path = args.get_string("tenant-out");
        !path.empty()) {
      std::ofstream out(path);
      write_tenant_csv(out, result);
      std::cout << "per-tenant metrics written to " << path << '\n';
    }
    if (prof != nullptr) {
      std::cout << '\n';
      write_profile_summary(std::cout, *prof, result.wall_seconds);
      if (!profile_path.empty()) {
        {
          std::ofstream out(profile_path + ".csv");
          write_profile_csv(out, *prof);
        }
        {
          std::ofstream out(profile_path + ".folded");
          write_folded_stacks(out, *prof);
        }
        std::cout << "profile written to " << profile_path
                  << ".{csv,folded}\n";
      }
    }
    if (!manifest_path.empty()) {
      std::ofstream out(manifest_path);
      write_multi_tenant_manifest(out, mt, result, prof);
      std::cout << "run manifest written to " << manifest_path << '\n';
    }
    return 0;
  }

  // Telemetry, the decision timeline, and the wall profile always describe
  // replication 0, no matter how the batch is executed.
  std::vector<RunMetrics> runs;
  std::vector<AdaptivePolicy::DecisionRecord> decisions;
  std::unique_ptr<Telemetry> telemetry;
  std::optional<MarketReport> market_report;  // replication 0's ledger
  RunMetrics instrumented;  // metrics of the telemetry-carrying run
  const std::vector<std::uint64_t> seeds = replication_seeds(reps, seed);
  if (parallelism == 1) {
    for (std::size_t i = 0; i < reps; ++i) {
      RunOutput output =
          i == 0 && (!checkpoint_path.empty() || !restore_path.empty())
              ? run_replication_zero(config, policy, seeds[i], telemetry_opts,
                                     restore_path, checkpoint_path,
                                     checkpoint_at, prof)
              : run_scenario(config, policy, seeds[i],
                             i == 0 ? telemetry_opts
                                    : std::optional<TelemetryOptions>{},
                             i == 0 ? prof : nullptr);
      std::cerr << "rep " << i + 1 << "/" << reps << ": "
                << output.metrics.generated << " requests in "
                << fmt(output.metrics.wall_seconds, 1) << " s\n";
      if (i == 0) {
        decisions = std::move(output.decisions);
        telemetry = std::move(output.telemetry);
        market_report = std::move(output.market);
        instrumented = output.metrics;
      }
      runs.push_back(std::move(output.metrics));
    }
  } else {
    runs = run_replications(
        config, policy, reps, seed,
        [&](const RunMetrics& m) {
          std::cerr << "rep seed=" << m.seed << ": " << m.generated
                    << " requests in " << fmt(m.wall_seconds, 1) << " s\n";
        },
        parallelism);
    // Instrumentation needs a dedicated sequential pass (the collector is
    // per-replication and the workers only keep metrics; the profiler is
    // single-threaded by design).
    if (telemetry_opts.has_value() || !decisions_path.empty() ||
        !market_path.empty() || prof != nullptr) {
      RunOutput output =
          run_scenario(config, policy, seeds[0], telemetry_opts, prof);
      decisions = std::move(output.decisions);
      telemetry = std::move(output.telemetry);
      market_report = std::move(output.market);
      instrumented = std::move(output.metrics);
    }
  }
  const AggregateMetrics agg = aggregate(runs);

  std::cout << "scenario: " << to_string(config.workload) << " @ scale "
            << config.scale << ", horizon " << config.horizon / 86400.0
            << " day(s), policy " << policy.label(config.scale) << "\n\n";
  print_policy_table(std::cout, {agg});
  std::cout << "\n95% CIs: rejection " << fmt_ci(agg.rejection_rate, 4)
            << ", utilization " << fmt_ci(agg.utilization, 3) << ", VM-hours "
            << fmt_ci(agg.vm_hours, 1) << '\n';
  if (config.fault.enabled() || config.reconciler.enabled) {
    std::cout << "\nfault injection / self-healing (per replication):\n";
    print_fault_table(std::cout, runs);
    std::cout << "availability " << fmt_ci(agg.availability, 4) << " (95% CI)\n";
  }
  if (config.market.enabled) {
    std::cout << "\nIaaS market (per replication):\n";
    print_market_table(std::cout, runs);
    std::cout << "billed cost " << fmt_ci(agg.billed_cost, 2) << " (95% CI)\n";
  }
  if (config.resilience.enabled) {
    std::cout << "\nrequest-path resilience (per replication):\n";
    print_resilience_table(std::cout, runs);
  }
  if (const std::string path = args.get_string("resilience-out");
      !path.empty()) {
    std::ofstream out(path);
    write_resilience_csv(out, runs);
    std::cout << "resilience metrics written to " << path << '\n';
  }
  if (config.apptier.enabled) {
    std::cout << "\nmulti-tier cache (per replication):\n";
    print_apptier_table(std::cout, runs);
  }
  if (const std::string path = args.get_string("apptier-out"); !path.empty()) {
    std::ofstream out(path);
    write_apptier_csv(out, runs);
    std::cout << "cache-tier metrics written to " << path << '\n';
  }

  if (const std::string path = args.get_string("csv"); !path.empty()) {
    std::ofstream out(path);
    write_policy_csv(out, {agg});
    std::cout << "metrics CSV written to " << path << '\n';
  }
  if (!decisions_path.empty() && !decisions.empty()) {
    write_decisions_csv(decisions_path, decisions);
  }
  if (!market_path.empty() && market_report.has_value()) {
    std::ofstream out(market_path);
    write_market_csv(out, *market_report);
    std::cout << "market ledger written to " << market_path << " ("
              << market_report->ledger.size() << " purchases, "
              << market_report->spot_path.size() << " price points)\n";
  }
  if (telemetry != nullptr) {
    print_observability_summary(std::cout, instrumented);
    if (!trace_path.empty()) {
      ProfileScope profile_export(prof, ProfileCategory::kExportTrace);
      std::ofstream out(trace_path);
      write_chrome_trace(out, telemetry->trace(),
                         "cloudprov " + policy.label(config.scale),
                         telemetry->spans());
      std::cout << "trace written to " << trace_path << " ("
                << telemetry->trace().size() << " events, "
                << telemetry->trace().dropped() << " dropped)\n";
    }
    if (!metrics_path.empty()) {
      ProfileScope profile_export(prof, ProfileCategory::kExportMetrics);
      std::ofstream out(metrics_path);
      if (metrics_format == "prom") {
        write_prometheus_text(out, telemetry->metrics().snapshot());
      } else {
        write_metrics_csv(out, telemetry->metrics().snapshot());
      }
      std::cout << "telemetry metrics written to " << metrics_path << " ("
                << metrics_format << ")\n";
    }
    if (!spans_path.empty() && telemetry->spans() != nullptr) {
      ProfileScope profile_export(prof, ProfileCategory::kExportSpans);
      std::ofstream out(spans_path);
      write_span_csv(out, *telemetry->spans());
      std::cout << "request spans written to " << spans_path << " ("
                << telemetry->spans()->finished().size() << " traces, "
                << telemetry->spans()->dropped() << " dropped)\n";
    }
    if (!drift_path.empty() && telemetry->drift() != nullptr) {
      ProfileScope profile_export(prof, ProfileCategory::kExportDrift);
      std::ofstream out(drift_path);
      write_drift_csv(out, *telemetry->drift());
      std::cout << "model-drift windows written to " << drift_path << " ("
                << telemetry->drift()->windows().size() << " windows)\n";
    }
    if (!slo_path.empty() && telemetry->slo() != nullptr) {
      ProfileScope profile_export(prof, ProfileCategory::kExportSlo);
      std::ofstream out(slo_path);
      write_slo_csv(out, *telemetry->slo());
      std::cout << "SLO burn-rate samples written to " << slo_path << " ("
                << telemetry->slo()->alerts().size() << " alert edges)\n";
    }
  }

  if (prof != nullptr) {
    std::cout << '\n';
    write_profile_summary(std::cout, *prof, instrumented.wall_seconds);
    if (!profile_path.empty()) {
      ProfileScope profile_export(prof, ProfileCategory::kExportProfile);
      {
        std::ofstream out(profile_path + ".csv");
        write_profile_csv(out, *prof);
      }
      {
        std::ofstream out(profile_path + ".trace.json");
        write_profile_chrome_trace(out, *prof);
      }
      {
        std::ofstream out(profile_path + ".folded");
        write_folded_stacks(out, *prof);
      }
    }
    if (!profile_path.empty()) {
      std::cout << "profile written to " << profile_path << ".{csv,trace.json,"
                << "folded} (" << prof->snapshots().size() << " snapshots)\n";
    }
  }
  // The manifest goes last so its wall section sees every export scope.
  if (!manifest_path.empty()) {
    {
      ProfileScope profile_export(prof, ProfileCategory::kExportManifest);
      // --manifest-out implies --profile, so `instrumented` is always the
      // profiled replication's metrics (replication 0's seed either way).
      std::ofstream out(manifest_path);
      write_run_manifest(out, config, policy.label(config.scale), seed, reps,
                         instrumented, prof);
    }
    std::cout << "run manifest written to " << manifest_path << '\n';
  }
  return 0;
}
