// Scientific Bag-of-Tasks walkthrough (the paper's Section V-B2 scenario).
//
// One simulated day of the Iosup BoT model at full paper scale: compute-heavy
// 300-second tasks arriving as job batches, dense between 8 a.m. and 5 p.m.
// Prints the provisioning decisions around the peak boundaries — the moment
// the workload analyzer's proactive alert fires *before* the 8 a.m. ramp is
// the paper's key mechanism.
#include <cstdio>
#include <memory>

#include "cloud/broker.h"
#include "core/adaptive_policy.h"
#include "core/application_provisioner.h"
#include "experiment/scenario.h"
#include "predict/periodic_profile.h"

using namespace cloudprov;

int main() {
  ScenarioConfig config = scientific_scenario(1.0);

  Simulation sim;
  Datacenter datacenter(sim, config.datacenter,
                        std::make_unique<LeastLoadedPlacement>());
  ProvisionerConfig prov_config;
  prov_config.initial_service_time_estimate = config.initial_service_time_estimate;
  ApplicationProvisioner provisioner(sim, datacenter, config.qos, prov_config);

  BotWorkload workload(config.bot);
  Broker broker(sim, workload, provisioner, Rng(17));

  auto predictor = std::make_shared<PeriodicProfilePredictor>(
      bot_profile_predictor(config.bot));
  AdaptivePolicy policy(sim, predictor, config.modeler, config.analyzer);
  policy.attach(provisioner);
  broker.start();
  sim.run(config.horizon);

  std::printf("provisioning decisions around the peak boundaries:\n");
  std::printf("  %-10s %-16s %-10s\n", "time", "expected req/s", "instances");
  double last_target = -1.0;
  for (const auto& d : policy.decisions()) {
    if (static_cast<double>(d.target_instances) == last_target) continue;
    last_target = static_cast<double>(d.target_instances);
    const int h = static_cast<int>(d.time / 3600.0);
    const int m = static_cast<int>(d.time / 60.0) % 60;
    std::printf("  %02d:%02d      %-16.4f %zu\n", h, m, d.expected_rate,
                d.achieved_instances);
  }

  std::printf("\none-day summary (paper Figure 6 'Adaptive' bar):\n");
  std::printf("  requests:   %llu (%.3f%% rejected; paper: ~8286, ~0%%)\n",
              static_cast<unsigned long long>(broker.generated()),
              100.0 * provisioner.rejection_rate());
  std::printf("  response:   %.0f s mean (Ts = %.0f s), %llu violations\n",
              provisioner.response_time_stats().mean(),
              config.qos.max_response_time,
              static_cast<unsigned long long>(provisioner.qos_violations()));
  TimeWeightedValue history = provisioner.instance_history();
  history.advance(sim.now());
  std::printf("  instances:  %.0f min / %.0f max (paper: 13 / 80)\n",
              history.min(), history.max());
  std::printf("  VM hours:   %.0f at %.0f%% utilization (paper: ~960, ~78%%)\n",
              datacenter.vm_hours(), 100.0 * datacenter.utilization());
  return 0;
}
