// Steady-state allocation audit for the serve hot path.
//
// This binary replaces the global allocator with a counting one and drives
// the same configuration as BM_ServedPoissonRequests/16 (broker -> admission
// -> round-robin -> VM service -> stats, telemetry off). After a warmup that
// brings every arena to its steady capacity — the event slab, the 4-ary
// heap, and each VM's waiting ring — a measured window of ~13k served
// requests must perform ZERO heap allocations: the kernel's typed inline
// delegates, the slab free list, and the ring buffers make the per-request
// cycle allocation-free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "cloud/broker.h"
#include "core/application_provisioner.h"
#include "workload/poisson_source.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, size ? size : 1) != 0) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace cloudprov {
namespace {

TEST(ServePathAllocation, SteadyStateServesWithZeroHeapAllocations) {
  constexpr std::size_t kInstances = 16;
  Simulation sim;
  DatacenterConfig dc_config;
  dc_config.host_count = kInstances / 8 + 1;
  Datacenter datacenter(sim, dc_config,
                        std::make_unique<LeastLoadedPlacement>());
  QosTargets qos;
  qos.max_response_time = 0.250;
  ProvisionerConfig prov_config;
  prov_config.initial_service_time_estimate = 0.105;
  ApplicationProvisioner provisioner(sim, datacenter, qos, prov_config);
  provisioner.scale_to(kInstances);
  const double lambda = 8.0 * static_cast<double>(kInstances);  // rho = 0.84
  PoissonSource source(lambda,
                       std::make_shared<ScaledUniformDistribution>(0.1, 0.1),
                       0.0, 200.0);
  Broker broker(sim, source, provisioner, Rng(7));
  broker.start();

  // Warmup: boots complete, arenas (slab, heap, waiting rings) reach their
  // steady capacity, and the adaptive queue bound settles on monitored data.
  sim.run(100.0);
  const std::uint64_t generated_before = broker.generated();
  const std::uint64_t completed_before = provisioner.completed();
  ASSERT_GT(generated_before, 10000u);  // the warmup actually served traffic

  const std::uint64_t allocations_before =
      g_allocations.load(std::memory_order_relaxed);
  sim.run(200.0);
  const std::uint64_t allocations_during =
      g_allocations.load(std::memory_order_relaxed) - allocations_before;

  // The window really exercised the full cycle...
  EXPECT_GT(broker.generated() - generated_before, 10000u);
  EXPECT_GT(provisioner.completed() - completed_before, 10000u);
  // ...and did so without a single heap allocation,
  EXPECT_EQ(allocations_during, 0u);
  // through the typed inline-delegate path only (no boxed closures at all:
  // arrivals, completions, and boots are method binds).
  EXPECT_EQ(sim.queue().boxed_pushed_count(), 0u);
}

}  // namespace
}  // namespace cloudprov
