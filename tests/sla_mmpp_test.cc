// Tests for the SLA-management extension (per-class QoS, incentives,
// priority admission under contention) and the MMPP bursty workload source.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cloud/broker.h"
#include "core/application_provisioner.h"
#include "core/sla.h"
#include "stats/running_stats.h"
#include "workload/mmpp_source.h"

namespace cloudprov {
namespace {

std::vector<SlaClass> two_classes() {
  SlaClass best_effort;
  best_effort.name = "best-effort";
  best_effort.priority_threshold = 0;
  best_effort.max_response_time = 1.0;
  best_effort.revenue_per_request = 1.0;
  best_effort.rejection_penalty = 0.0;
  best_effort.violation_penalty = 0.5;
  SlaClass premium;
  premium.name = "premium";
  premium.priority_threshold = 5;
  premium.max_response_time = 0.5;
  premium.stamp_deadline = true;
  premium.revenue_per_request = 10.0;
  premium.rejection_penalty = 20.0;
  premium.violation_penalty = 10.0;
  return {best_effort, premium};
}

Request make_request(std::uint64_t id, double t, int priority) {
  Request r;
  r.id = id;
  r.arrival_time = t;
  r.service_demand = 0.1;
  r.priority = priority;
  return r;
}

TEST(SlaManager, ClassifiesByPriorityThreshold) {
  SlaManager manager(two_classes());
  EXPECT_EQ(manager.classify(0), 0u);
  EXPECT_EQ(manager.classify(4), 0u);
  EXPECT_EQ(manager.classify(5), 1u);
  EXPECT_EQ(manager.classify(100), 1u);
  EXPECT_EQ(manager.classify(-3), 0u);  // below every threshold -> lowest
}

TEST(SlaManager, StampsDeadlineOnlyWhenConfigured) {
  SlaManager manager(two_classes());
  Request best = make_request(1, 10.0, 0);
  manager.on_arrival(best);
  EXPECT_TRUE(std::isinf(best.deadline));
  Request prem = make_request(2, 10.0, 9);
  manager.on_arrival(prem);
  EXPECT_DOUBLE_EQ(prem.deadline, 10.5);
}

TEST(SlaManager, RevenueAccountsOutcomesPerClass) {
  SlaManager manager(two_classes());
  // Premium: 2 on-time completions, 1 violation, 1 rejection.
  for (std::uint64_t i = 1; i <= 4; ++i) {
    Request r = make_request(i, 0.0, 9);
    manager.on_arrival(r);
    if (i == 4) {
      manager.on_rejected(r);
    } else {
      manager.on_completed(r, i == 3 ? 0.9 : 0.2);
    }
  }
  const SlaClassReport premium = manager.report(1);
  EXPECT_EQ(premium.offered, 4u);
  EXPECT_EQ(premium.completed, 3u);
  EXPECT_EQ(premium.rejected, 1u);
  EXPECT_EQ(premium.violations, 1u);
  // 2 on-time x 10 - 1 rejection x 20 - 1 violation x 10 = -10.
  EXPECT_DOUBLE_EQ(premium.revenue, -10.0);

  // Best effort: one on-time completion.
  Request r = make_request(5, 0.0, 0);
  manager.on_arrival(r);
  manager.on_completed(r, 0.2);
  EXPECT_DOUBLE_EQ(manager.report(0).revenue, 1.0);
  EXPECT_DOUBLE_EQ(manager.total_revenue(), -9.0);
}

TEST(SlaManager, Validation) {
  EXPECT_THROW(SlaManager({}), std::invalid_argument);
  auto classes = two_classes();
  classes[1].priority_threshold = classes[0].priority_threshold;
  EXPECT_THROW(SlaManager(std::move(classes)), std::invalid_argument);
  classes = two_classes();
  classes[0].max_response_time = 0.0;
  EXPECT_THROW(SlaManager(std::move(classes)), std::invalid_argument);
}

TEST(SlaIntegration, PriorityAdmissionProtectsPremiumRevenue) {
  // Under contention (pool sized at half the offered load), priority-aware
  // admission must yield higher premium completion and total revenue than
  // FIFO admission.
  auto run = [](bool priority_aware) {
    Simulation sim;
    DatacenterConfig dc;
    dc.host_count = 2;
    Datacenter datacenter(sim, dc, std::make_unique<LeastLoadedPlacement>());
    QosTargets qos;
    qos.max_response_time = 0.5;
    ProvisionerConfig config;
    config.initial_service_time_estimate = 0.1;
    std::unique_ptr<AdmissionPolicy> admission;
    if (priority_aware) {
      admission = std::make_unique<PriorityAwareAdmission>(/*reserved=*/6,
                                                           /*threshold=*/5);
    } else {
      admission = std::make_unique<KBoundAdmission>();
    }
    ApplicationProvisioner provisioner(sim, datacenter, qos, config,
                                       std::move(admission));
    provisioner.scale_to(4);  // 4 instances x k=5 (Ts=0.5/Tm=0.1) = 20 slots

    SlaManager sla(two_classes());
    provisioner.set_completion_listener(
        [&](const Request& r, double response) { sla.on_completed(r, response); });

    // Offered: 80 req/s total (2x capacity), 25% premium.
    Rng rng(77);
    double t = 0.0;
    std::uint64_t id = 0;
    while (t < 200.0) {
      t += rng.exponential(80.0);
      Request r = make_request(++id, t, rng.bernoulli(0.25) ? 9 : 0);
      r.service_demand = 0.1 * rng.uniform(1.0, 1.1);
      sim.schedule_at(t, [&sla, &provisioner, r]() mutable {
        sla.on_arrival(r);
        Request submitted = r;
        if (!provisioner.try_submit(submitted)) sla.on_rejected(submitted);
      });
    }
    sim.run();
    return sla;
  };

  const SlaManager fifo = run(false);
  const SlaManager aware = run(true);

  const double fifo_premium_completion =
      static_cast<double>(fifo.report(1).completed) /
      static_cast<double>(fifo.report(1).offered);
  const double aware_premium_completion =
      static_cast<double>(aware.report(1).completed) /
      static_cast<double>(aware.report(1).offered);
  EXPECT_GT(aware_premium_completion, fifo_premium_completion + 0.2);
  EXPECT_GT(aware.total_revenue(), fifo.total_revenue());
  // The improvement costs best-effort traffic, by design.
  EXPECT_LT(aware.report(0).completed, fifo.report(0).completed);
}

// ---------------------------------------------------------------- MMPP

TEST(Mmpp, SingleStateIsPoisson) {
  MmppConfig config;
  config.states = {MmppState{5.0, 100.0}};
  config.service_demand = std::make_shared<DeterministicDistribution>(0.1);
  config.horizon = 20000.0;
  MmppSource source(config);
  Rng rng(3);
  RunningStats gaps;
  double last = 0.0;
  while (auto a = source.next(rng)) {
    gaps.add(a->time - last);
    last = a->time;
  }
  EXPECT_NEAR(gaps.mean(), 0.2, 0.005);
  EXPECT_NEAR(gaps.variance(), 0.04, 0.003);  // exponential
}

TEST(Mmpp, LongRunRateMatchesStationaryMixture) {
  MmppConfig config;
  // ON 30 req/s for mean 50 s, OFF 2 req/s for mean 150 s:
  // stationary rate = (30*50 + 2*150) / 200 = 9.
  config.states = {MmppState{30.0, 50.0}, MmppState{2.0, 150.0}};
  config.service_demand = std::make_shared<DeterministicDistribution>(0.1);
  config.horizon = 200000.0;
  MmppSource source(config);
  EXPECT_NEAR(source.expected_rate(1.0), 9.0, 1e-12);
  Rng rng(5);
  std::uint64_t count = 0;
  while (source.next(rng)) ++count;
  EXPECT_NEAR(static_cast<double>(count) / config.horizon, 9.0, 0.45);
}

TEST(Mmpp, ArrivalsAreBurstierThanPoisson) {
  // Index of dispersion of counts > 1 distinguishes MMPP from Poisson.
  MmppConfig config;
  config.states = {MmppState{50.0, 20.0}, MmppState{1.0, 20.0}};
  config.service_demand = std::make_shared<DeterministicDistribution>(0.1);
  config.horizon = 100000.0;
  MmppSource source(config);
  Rng rng(7);
  // Count arrivals in 10 s windows.
  std::vector<double> counts(10000, 0.0);
  while (auto a = source.next(rng)) {
    const auto bin = static_cast<std::size_t>(a->time / 10.0);
    if (bin < counts.size()) counts[bin] += 1.0;
  }
  RunningStats stats;
  for (double c : counts) stats.add(c);
  // Poisson would give variance ~= mean; the MMPP must be far over-dispersed.
  EXPECT_GT(stats.variance(), 3.0 * stats.mean());
}

TEST(Mmpp, ZeroRateStateProducesGaps) {
  MmppConfig config;
  config.states = {MmppState{100.0, 10.0}, MmppState{0.0, 10.0}};
  config.service_demand = std::make_shared<DeterministicDistribution>(0.1);
  config.horizon = 5000.0;
  MmppSource source(config);
  Rng rng(9);
  double max_gap = 0.0;
  double last = 0.0;
  while (auto a = source.next(rng)) {
    max_gap = std::max(max_gap, a->time - last);
    last = a->time;
  }
  EXPECT_GT(max_gap, 5.0);  // OFF periods show up as long silences
}

TEST(Mmpp, Validation) {
  MmppConfig config;
  EXPECT_THROW(MmppSource{config}, std::invalid_argument);
  config.states = {MmppState{1.0, 0.0}};
  config.service_demand = std::make_shared<DeterministicDistribution>(0.1);
  EXPECT_THROW(MmppSource{config}, std::invalid_argument);
}

}  // namespace
}  // namespace cloudprov
