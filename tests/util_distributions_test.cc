#include "util/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "stats/running_stats.h"

namespace cloudprov {
namespace {

/// Samples `dist` and checks the empirical mean/variance against the
/// distribution's self-reported analytic moments.
void expect_moments_match(const Distribution& dist, int n = 300000) {
  Rng rng(314159);
  RunningStats stats;
  for (int i = 0; i < n; ++i) stats.add(dist.sample(rng));
  const double mean_tol = 5.0 * std::sqrt(dist.variance() / n) +
                          1e-3 * std::abs(dist.mean()) + 1e-12;
  EXPECT_NEAR(stats.mean(), dist.mean(), mean_tol) << dist.name();
  EXPECT_NEAR(stats.variance(), dist.variance(),
              0.05 * dist.variance() + 1e-9)
      << dist.name();
}

TEST(Deterministic, AlwaysSameValue) {
  DeterministicDistribution d(4.2);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(rng), 4.2);
  EXPECT_EQ(d.mean(), 4.2);
  EXPECT_EQ(d.variance(), 0.0);
}

TEST(Exponential, Moments) { expect_moments_match(ExponentialDistribution(2.5)); }
TEST(Uniform, Moments) { expect_moments_match(UniformDistribution(1.0, 9.0)); }
TEST(Weibull, Moments) { expect_moments_match(WeibullDistribution(1.79, 24.16)); }
TEST(Normal, Moments) { expect_moments_match(NormalDistribution(5.0, 1.5)); }
TEST(LogNormal, Moments) { expect_moments_match(LogNormalDistribution(0.2, 0.5)); }
TEST(ScaledUniform, Moments) {
  expect_moments_match(ScaledUniformDistribution(0.1, 0.10));
}

TEST(ScaledUniform, PaperServiceTimeRange) {
  // The paper's 100 ms + 0-10% heterogeneity: samples in [100, 110] ms.
  ScaledUniformDistribution d(0.100, 0.10);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double s = d.sample(rng);
    EXPECT_GE(s, 0.100);
    EXPECT_LE(s, 0.110);
  }
  EXPECT_NEAR(d.mean(), 0.105, 1e-12);
}

TEST(Weibull, PaperModes) {
  // The three distribution modes the paper's predictor relies on
  // (Section V-B2): 7.379 s, 15.298 jobs, 1.309 tasks.
  EXPECT_NEAR(WeibullDistribution(4.25, 7.86).mode(), 7.379, 0.01);
  EXPECT_NEAR(WeibullDistribution(1.79, 24.16).mode(), 15.298, 0.01);
  EXPECT_NEAR(WeibullDistribution(1.76, 2.11).mode(), 1.309, 0.01);
}

TEST(Weibull, ModeIsZeroForShapeBelowOne) {
  EXPECT_EQ(WeibullDistribution(0.9, 5.0).mode(), 0.0);
  EXPECT_EQ(WeibullDistribution(1.0, 5.0).mode(), 0.0);
}

TEST(Pareto, InfiniteMomentsReported) {
  EXPECT_TRUE(std::isinf(ParetoDistribution(1.0, 0.9).mean()));
  EXPECT_TRUE(std::isinf(ParetoDistribution(1.0, 1.5).variance()));
  EXPECT_FALSE(std::isinf(ParetoDistribution(1.0, 2.5).variance()));
}

TEST(Distributions, NamesIncludeParameters) {
  EXPECT_EQ(ExponentialDistribution(2.0).name(), "Exponential(2)");
  EXPECT_EQ(WeibullDistribution(4.25, 7.86).name(), "Weibull(4.25, 7.86)");
  EXPECT_EQ(UniformDistribution(0.0, 1.0).name(), "Uniform(0, 1)");
}

TEST(Distributions, ConstructorValidation) {
  EXPECT_THROW(ExponentialDistribution(0.0), std::invalid_argument);
  EXPECT_THROW(WeibullDistribution(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(UniformDistribution(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(NormalDistribution(0.0, -1.0), std::invalid_argument);
  EXPECT_THROW(ParetoDistribution(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(ScaledUniformDistribution(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(ScaledUniformDistribution(1.0, -0.1), std::invalid_argument);
}

TEST(Distributions, PolymorphicUseThroughPointer) {
  DistributionPtr d = std::make_shared<ExponentialDistribution>(1.0);
  Rng rng(1);
  EXPECT_GT(d->sample(rng), 0.0);
  EXPECT_EQ(d->mean(), 1.0);
}

}  // namespace
}  // namespace cloudprov
