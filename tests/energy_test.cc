// Host power accounting and the data-center energy model.
#include <gtest/gtest.h>

#include <memory>

#include "cloud/datacenter.h"
#include "experiment/energy.h"

namespace cloudprov {
namespace {

TEST(HostPower, PoweredOnlyWhileOccupied) {
  Host host(0, HostSpec{});
  const VmSpec vm{};
  EXPECT_EQ(host.powered_seconds(100.0), 0.0);
  host.allocate(vm, 10.0);
  EXPECT_EQ(host.powered_seconds(25.0), 15.0);  // live interval
  host.allocate(vm, 20.0);                      // second VM: already powered
  host.release(vm, 30.0);
  EXPECT_EQ(host.powered_seconds(30.0), 20.0);  // still one VM resident
  host.release(vm, 50.0);                       // last VM gone -> power off
  EXPECT_EQ(host.powered_seconds(100.0), 40.0);
  // Power cycles accumulate.
  host.allocate(vm, 200.0);
  host.release(vm, 210.0);
  EXPECT_EQ(host.powered_seconds(300.0), 50.0);
}

TEST(Energy, IdleFloorPlusDynamicPower) {
  Simulation sim;
  DatacenterConfig config;
  config.host_count = 4;
  Datacenter dc(sim, config, std::make_unique<FirstFitPlacement>());
  Vm* vm = dc.create_vm(VmSpec{});
  ASSERT_NE(vm, nullptr);
  // One host powered for 1 h; the VM busy for 30 min.
  Request r;
  r.id = 1;
  r.service_demand = 1800.0;
  vm->submit(r);
  sim.run(3600.0);

  PowerModel model;
  model.idle_watts = 100.0;
  model.peak_watts = 180.0;  // (180-100)/8 = 10 W per busy core
  // E = 100 W * 1 h + 10 W * 0.5 h = 105 Wh = 0.105 kWh.
  EXPECT_NEAR(energy_kwh(dc, model), 0.105, 1e-9);
}

TEST(Energy, ConsolidationBeatsSpreadingAtIdenticalVmHours) {
  auto run = [](std::unique_ptr<PlacementPolicy> placement) {
    Simulation sim;
    DatacenterConfig config;
    config.host_count = 8;
    Datacenter dc(sim, config, std::move(placement));
    for (int i = 0; i < 8; ++i) dc.create_vm(VmSpec{});
    sim.schedule_at(3600.0, [] {});
    sim.run();
    return std::pair{dc.vm_hours(), energy_kwh(dc, PowerModel{})};
  };
  const auto [spread_hours, spread_energy] =
      run(std::make_unique<LeastLoadedPlacement>());
  const auto [packed_hours, packed_energy] =
      run(std::make_unique<FirstFitPlacement>());
  EXPECT_EQ(spread_hours, packed_hours);
  // 8 hosts powered vs 1 host powered.
  EXPECT_NEAR(spread_energy / packed_energy, 8.0, 0.01);
}

TEST(Energy, Validation) {
  Simulation sim;
  DatacenterConfig config;
  config.host_count = 1;
  Datacenter dc(sim, config, std::make_unique<FirstFitPlacement>());
  PowerModel bad;
  bad.peak_watts = bad.idle_watts - 1.0;
  EXPECT_THROW(energy_kwh(dc, bad), std::invalid_argument);
}

}  // namespace
}  // namespace cloudprov
