// Figure-level smoke tests: run the actual experiment scenarios end to end
// (scientific at paper scale, web at reduced scale) and assert the paper's
// headline orderings, so a regression anywhere in the stack that would
// change the reproduced figures fails CI directly.
#include <gtest/gtest.h>

#include "experiment/metrics.h"
#include "experiment/runner.h"
#include "experiment/scenario.h"

namespace cloudprov {
namespace {

TEST(Figure6Smoke, PaperHeadlineNumbers) {
  const ScenarioConfig config = scientific_scenario(1.0);
  const auto adaptive =
      aggregate(run_replications(config, PolicySpec::adaptive(), 2, 11));
  const auto static15 =
      aggregate(run_replications(config, PolicySpec::fixed(15), 2, 11));
  const auto static45 =
      aggregate(run_replications(config, PolicySpec::fixed(45), 2, 11));
  const auto static75 =
      aggregate(run_replications(config, PolicySpec::fixed(75), 2, 11));

  // Figure 6(a): adaptive swings ~13..80.
  EXPECT_NEAR(adaptive.min_instances.mean, 13.0, 2.0);
  EXPECT_NEAR(adaptive.max_instances.mean, 81.0, 6.0);

  // Figure 6(b): rejection decreases monotonically with static size and is
  // near zero for adaptive; Static-45 ~ 31.7% (paper).
  EXPECT_GT(static15.rejection_rate.mean, static45.rejection_rate.mean);
  EXPECT_GT(static45.rejection_rate.mean, static75.rejection_rate.mean);
  EXPECT_NEAR(static45.rejection_rate.mean, 0.317, 0.05);
  EXPECT_LT(adaptive.rejection_rate.mean, 0.01);
  EXPECT_LT(static75.rejection_rate.mean, 0.001);

  // Figure 6(b): utilization — adaptive ~0.78 (paper), Static-75 ~0.42.
  EXPECT_NEAR(adaptive.utilization.mean, 0.78, 0.03);
  EXPECT_NEAR(static75.utilization.mean, 0.42, 0.04);

  // Figure 6(c): VM hours — adaptive ~ a constant 40-instance pool and
  // ~46% below Static-75 (paper).
  EXPECT_NEAR(adaptive.vm_hours.mean, 40.0 * 24.0, 90.0);
  const double saving = 1.0 - adaptive.vm_hours.mean / static75.vm_hours.mean;
  EXPECT_NEAR(saving, 0.46, 0.06);

  // Figure 6(d) + caption: response within Ts, zero violations everywhere.
  for (const auto* agg : {&adaptive, &static15, &static45, &static75}) {
    EXPECT_EQ(agg->qos_violations.mean, 0.0) << agg->policy;
    EXPECT_LE(agg->avg_response_time.mean, 700.0) << agg->policy;
  }

  // The paper's Figure 6(d) ordering: undersized static pools have *longer*
  // accepted-response times (queues always full).
  EXPECT_GT(static45.avg_response_time.mean, adaptive.avg_response_time.mean);
}

TEST(Figure5Smoke, ShapeAtReducedScale) {
  // One simulated day at 5% scale keeps this test ~15 s while preserving
  // the orderings; EXPERIMENTS.md records the full paper-scale run.
  ScenarioConfig config = web_scenario(0.05);
  config.horizon = 86400.0;
  config.web.horizon = config.horizon;

  const auto adaptive =
      aggregate(run_replications(config, PolicySpec::adaptive(), 1, 5));
  const auto small =
      aggregate(run_replications(config, PolicySpec::fixed(50), 1, 5));
  const auto large =
      aggregate(run_replications(config, PolicySpec::fixed(150), 1, 5));

  // Figure 5(b): the small static pool rejects heavily at high utilization;
  // the peak-sized pool doesn't reject but idles.
  EXPECT_GT(small.rejection_rate.mean, 0.15);
  EXPECT_GT(small.utilization.mean, large.utilization.mean);
  EXPECT_LT(large.rejection_rate.mean, 0.01);

  // Adaptive: near-zero rejection at fewer VM-hours than the peak-sized
  // static pool.
  EXPECT_LT(adaptive.rejection_rate.mean, 0.02);
  EXPECT_LT(adaptive.vm_hours.mean, large.vm_hours.mean);
  EXPECT_GT(adaptive.utilization.mean, large.utilization.mean);

  // Caption: no QoS violations anywhere.
  EXPECT_EQ(adaptive.qos_violations.mean, 0.0);
  EXPECT_EQ(small.qos_violations.mean, 0.0);
  EXPECT_EQ(large.qos_violations.mean, 0.0);

  // Figure 5(a): the pool tracks the sinusoid (max materially above min).
  EXPECT_GT(adaptive.max_instances.mean, 1.5 * adaptive.min_instances.mean);
}

}  // namespace
}  // namespace cloudprov
