// Final coverage batch: branch-level edges not reached elsewhere.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>

#include "core/performance_modeler.h"
#include "core/sla.h"
#include "sim/event_queue.h"
#include "stats/histogram.h"
#include "stats/quantile.h"
#include "stats/timeseries.h"
#include "util/csv.h"
#include "util/rng.h"
#include "workload/bot_workload.h"
#include "workload/web_workload.h"

namespace cloudprov {
namespace {

TEST(HistogramEdge, AllSamplesOutOfRange) {
  Histogram h = Histogram::linear(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  // No in-range mass: cumulative fraction defined as 0.
  EXPECT_EQ(h.cumulative_fraction(3), 0.0);
}

TEST(P2QuantileEdge, ConstantStreamIsExact) {
  P2Quantile q(0.9);
  for (int i = 0; i < 1000; ++i) q.add(4.2);
  EXPECT_DOUBLE_EQ(q.value(), 4.2);
}

TEST(TimeWeightedEdge, SameTimeUpdatesKeepLastValue) {
  TimeWeightedValue v(0.0, 1.0);
  v.update(5.0, 2.0);
  v.update(5.0, 3.0);  // zero-width interval: legal, no integral change
  v.advance(10.0);
  EXPECT_DOUBLE_EQ(v.integral(), 1.0 * 5.0 + 3.0 * 5.0);
  EXPECT_EQ(v.max(), 3.0);
}

TEST(EventQueueEdge, CancelledIdsAreNeverRevalidatedByReuse) {
  EventQueue queue;
  const EventId a = queue.push(1.0, [] {});
  queue.cancel(a);
  // The replacement may reuse a's slab slot, but its bumped generation makes
  // the handle distinct — the stale handle can never alias the new event.
  const EventId b = queue.push(1.0, [] {});
  EXPECT_NE(b, a);
  queue.cancel(a);  // stale: must be a no-op on b
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.pop().id, b);
}

TEST(CsvEdge, IntegerFormatAndQuotedOnlyField) {
  EXPECT_EQ(CsvWriter::format(std::int64_t{-42}), "-42");
  std::istringstream in("\"a,b\"\n");
  CsvReader reader(in);
  const auto row = reader.next_row();
  ASSERT_TRUE(row.has_value());
  ASSERT_EQ(row->size(), 1u);
  EXPECT_EQ((*row)[0], "a,b");
}

TEST(RngEdge, GammaShapeOneIsExponential) {
  Rng rng(71);
  double sum = 0.0;
  int over = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.gamma(1.0, 0.5);  // == Exp(rate 2)
    sum += x;
    over += x > 1.0 ? 1 : 0;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(over) / n, std::exp(-2.0), 0.005);
}

TEST(WebWorkloadEdge, FlatWeekProducesUniformRate) {
  WebWorkloadConfig config;
  for (auto& day : config.week) day = DayRates{100.0, 100.0};  // Rmin == Rmax
  const WebWorkload w(config);
  for (double t : {0.0, 6.0 * 3600.0, 12.0 * 3600.0, 3.5 * 86400.0}) {
    EXPECT_NEAR(w.expected_rate(t), 100.0, 1e-9) << t;
  }
}

TEST(BotWorkloadEdge, TwoDayHorizonRepeatsTheDailyCycle) {
  BotWorkloadConfig config;
  config.horizon = 2.0 * 86400.0;
  BotWorkload w(config);
  // Expected rate is periodic with the day.
  EXPECT_EQ(w.expected_rate(12.0 * 3600.0), w.expected_rate(36.0 * 3600.0));
  Rng rng(73);
  std::size_t day1_peak = 0;
  std::size_t day2_peak = 0;
  while (auto a = w.next(rng)) {
    const double tod = seconds_into_day(a->time);
    if (tod >= 8 * 3600.0 && tod < 17 * 3600.0) {
      (a->time < 86400.0 ? day1_peak : day2_peak) += 1;
    }
  }
  EXPECT_GT(day1_peak, 5000u);
  EXPECT_GT(day2_peak, 5000u);
}

TEST(ModelerEdge, ResponseTimeCheckCanBeTheBindingConstraint) {
  // Deep queue (k = 10) with Ts = 0.55 s and Tm = 0.1 s: blocking at rho
  // near 1 stays small, but Tq approaches k * Tm = 1.0 s > Ts, so the
  // response check must drive the scale-up.
  QosTargets qos;
  qos.max_response_time = 0.55;
  qos.min_utilization = 0.5;
  ModelerConfig config;
  config.max_vms = 1000;
  config.rejection_tolerance = 0.9;  // effectively disable the blocking check
  config.max_offered_load = 10.0;    // and the saturation guard
  PerformanceModeler modeler(qos, config);
  const ModelerDecision d = modeler.required_instances(1, 100.0, 0.1, 10);
  // The decision's predicted response must honour Ts.
  EXPECT_LE(d.predicted_response_time, 0.55);
  // And the pool must be large enough that rho < 1 comfortably.
  EXPECT_GT(d.instances, 10u);
}

TEST(SlaEdge, ReportAllPreservesClassOrder) {
  SlaClass a;
  a.name = "bronze";
  a.priority_threshold = 0;
  a.max_response_time = 1.0;
  SlaClass b;
  b.name = "gold";
  b.priority_threshold = 10;
  b.max_response_time = 0.5;
  SlaManager manager({a, b});
  const auto reports = manager.report_all();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].name, "bronze");
  EXPECT_EQ(reports[1].name, "gold");
}

}  // namespace
}  // namespace cloudprov
