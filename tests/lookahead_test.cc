// Co-simulation lookahead subsystem tests (src/lookahead + experiment/World):
//
//   - seed-stream derivation order regression (workload -> placement ->
//     fault -> market -> lookahead, pinned against raw splitmix64 draws),
//   - clone-continue bit-identity: snapshot a run mid-flight, restore into a
//     fresh World, continue to the horizon, and require every deterministic
//     RunMetrics field (and the full span CSV byte stream) to equal the
//     uninterrupted run's — with telemetry, with the fault layer, and with a
//     live spot market,
//   - snapshot fuzz at arbitrary (window-unaligned) times plus a chained
//     snapshot-of-a-restored-world,
//   - disk checkpoint roundtrip through the binary codec,
//   - LookaheadPolicy: the disabled search (K = 1, no bids) is bit-identical
//     to AdaptivePolicy, and an enabled search only ever commits candidates
//     that do not degrade QoS versus Algorithm 1's own choice.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "experiment/runner.h"
#include "experiment/world.h"
#include "lookahead/checkpoint.h"
#include "lookahead/world_state.h"
#include "telemetry/export.h"
#include "util/rng.h"

namespace cloudprov {
namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

// Every deterministic RunMetrics field, compared exactly (doubles with ==).
// wall_seconds is the only exclusion: it measures the host, not the
// simulation. `policy` is compared by the caller when labels should match.
#define EXPECT_SAME(field) EXPECT_EQ(a.field, b.field) << #field
void expect_identical_metrics(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_SAME(generated);
  EXPECT_SAME(accepted);
  EXPECT_SAME(rejected);
  EXPECT_SAME(completed);
  EXPECT_SAME(qos_violations);
  EXPECT_SAME(avg_response_time);
  EXPECT_SAME(std_response_time);
  EXPECT_SAME(p95_response_time);
  EXPECT_SAME(p99_response_time);
  EXPECT_SAME(min_instances);
  EXPECT_SAME(max_instances);
  EXPECT_SAME(avg_instances);
  EXPECT_SAME(vm_hours);
  EXPECT_SAME(busy_vm_hours);
  EXPECT_SAME(utilization);
  EXPECT_SAME(rejection_rate);
  EXPECT_SAME(instance_failures);
  EXPECT_SAME(vm_crashes);
  EXPECT_SAME(host_crashes);
  EXPECT_SAME(boot_failures);
  EXPECT_SAME(boot_timeouts);
  EXPECT_SAME(lost_requests);
  EXPECT_SAME(lost_to_vm_crashes);
  EXPECT_SAME(lost_to_host_crashes);
  EXPECT_SAME(availability);
  EXPECT_SAME(recoveries);
  EXPECT_SAME(mttr_mean);
  EXPECT_SAME(mttr_max);
  EXPECT_SAME(reconciler_heals);
  EXPECT_SAME(reconciler_retries);
  EXPECT_SAME(reconciler_aborts);
  EXPECT_SAME(final_instances);
  EXPECT_SAME(slo_response_alerts);
  EXPECT_SAME(slo_rejection_alerts);
  EXPECT_SAME(slo_worst_burn_rate);
  EXPECT_SAME(drift_windows);
  EXPECT_SAME(drift_response_mape);
  EXPECT_SAME(drift_response_bias);
  EXPECT_SAME(spans_traced);
  EXPECT_SAME(billed_cost);
  EXPECT_SAME(on_demand_cost);
  EXPECT_SAME(spot_cost);
  EXPECT_SAME(reserved_cost);
  EXPECT_SAME(on_demand_purchases);
  EXPECT_SAME(spot_purchases);
  EXPECT_SAME(reserved_purchases);
  EXPECT_SAME(spot_revocations);
  EXPECT_SAME(revocation_kills);
  EXPECT_SAME(lost_to_revocations);
  EXPECT_SAME(spot_price_mean);
  EXPECT_SAME(spot_price_max);
  EXPECT_SAME(client_requests);
  EXPECT_SAME(client_succeeded);
  EXPECT_SAME(client_failed);
  EXPECT_SAME(client_attempts);
  EXPECT_SAME(client_retries);
  EXPECT_SAME(retry_budget_denied);
  EXPECT_SAME(client_timeouts);
  EXPECT_SAME(wasted_completions);
  EXPECT_SAME(breaker_opens);
  EXPECT_SAME(breaker_half_opens);
  EXPECT_SAME(breaker_closes);
  EXPECT_SAME(breaker_fast_fails);
  EXPECT_SAME(shed_deadline);
  EXPECT_SAME(shed_brownout);
  EXPECT_SAME(cache_hits);
  EXPECT_SAME(cache_misses);
  EXPECT_SAME(cache_hit_ratio);
  EXPECT_SAME(cache_fills);
  EXPECT_SAME(cache_evictions);
  EXPECT_SAME(cache_expirations);
  EXPECT_SAME(cache_invalidations);
  EXPECT_SAME(cache_flushes);
  EXPECT_SAME(cache_vm_hours);
  EXPECT_SAME(cache_utilization);
  EXPECT_SAME(cache_avg_instances);
  EXPECT_SAME(cache_final_instances);
  EXPECT_SAME(lambda_miss_mean);
  EXPECT_SAME(cache_avg_response_time);
  EXPECT_SAME(backend_avg_response_time);
  EXPECT_SAME(simulated_events);
}
#undef EXPECT_SAME

// Figure 5 smoke (same literals the kernel golden test pins): web workload
// at scale 0.01, one day, adaptive, seed 42, every request traced.
ScenarioConfig fig5_config() {
  ScenarioConfig config = web_scenario(0.01);
  config.horizon = 86400.0;
  config.web.horizon = config.horizon;
  return config;
}

TelemetryOptions fig5_telemetry(const ScenarioConfig& config) {
  TelemetryOptions opts;
  opts.span_sample_rate = 1.0;
  opts.drift_enabled = true;
  opts.drift.qos_max_response_time = config.qos.max_response_time;
  opts.slo_enabled = true;
  opts.slo.log_alerts = false;
  return opts;
}

// The fault-ablation smoke of the kernel golden test: stochastic VM/host
// crashes, boot faults, degradations, an outage window, a scripted host
// crash, boot watchdog, reconciler. Seed 7, simulated_events = 1387838.
ScenarioConfig fault_smoke_config() {
  ScenarioConfig config = web_scenario(0.01);
  config.horizon = 86400.0;
  config.web.horizon = config.horizon;
  config.fault.vm_mtbf = 4.0 * 3600.0;
  config.fault.host_mtbf = 12.0 * 3600.0;
  config.fault.boot_fail_prob = 0.1;
  config.fault.straggler_prob = 0.1;
  config.fault.degraded_mtbf = 2.0 * 3600.0;
  config.fault.outages.push_back({30000.0, 32000.0});
  config.fault.scripted.push_back(
      {ScriptedFault::Kind::kHostCrash, 40000.0, 1});
  config.boot_timeout = 300.0;
  config.reconciler.enabled = true;
  config.reconciler.interval = 60.0;
  return config;
}

// Live spot market: half the pool on revocable spot capacity at a 0.70 bid,
// reconciler healing revocation deficits (bench_ablation_spotmarket smoke).
ScenarioConfig spot_smoke_config() {
  ScenarioConfig config = web_scenario(0.02);
  config.horizon = 6.0 * 3600.0;
  config.web.horizon = config.horizon;
  config.market.enabled = true;
  config.market.acquisition.spot_fraction = 0.5;
  config.market.acquisition.bid = 0.70;
  config.reconciler.enabled = true;
  config.reconciler.interval = 60.0;
  return config;
}

// Full resilience storm: an IaaS allocation outage under client timeouts,
// budgeted expo-jitter retries, a circuit breaker, and both shed modes —
// every piece of gateway/shedding state is live when a snapshot lands
// inside the outage window.
ScenarioConfig retry_storm_config() {
  ScenarioConfig config = web_scenario(0.01);
  config.horizon = 4.0 * 3600.0;
  config.web.horizon = config.horizon;
  config.fault.outages.push_back({600.0, 1500.0});
  config.resilience.enabled = true;
  config.resilience.attempt_timeout = 0.2;
  config.resilience.request_deadline = 2.0;
  config.resilience.retry.max_attempts = 4;
  config.resilience.retry.base = 0.05;
  config.resilience.retry.cap = 0.5;
  config.resilience.budget.enabled = true;
  config.resilience.budget.ratio = 0.2;
  config.resilience.breaker.enabled = true;
  config.resilience.shed.deadline_enabled = true;
  config.resilience.shed.brownout_enabled = true;
  config.resilience.shed.brownout_utilization = 0.8;
  config.resilience.shed.brownout_fraction = 0.3;
  return config;
}

/// Runs to `snapshot_time`, snapshots, restores into a fresh World, and
/// finishes the run there.
RunOutput clone_continue(const ScenarioConfig& config, const PolicySpec& policy,
                         std::uint64_t seed,
                         const std::optional<TelemetryOptions>& telemetry,
                         SimTime snapshot_time) {
  World world(config, policy, seed, telemetry);
  world.start();
  world.run_to(snapshot_time);
  const WorldState state = world.snapshot();
  World resumed(config, policy, seed, state);
  resumed.run_to(config.horizon);
  return resumed.finish();
}

// --- satellite: seed-stream derivation order ------------------------------

TEST(SeedStreams,
     DerivationOrderIsWorkloadPlacementFaultMarketLookaheadResilienceApptier) {
  for (const std::uint64_t seed : {0ULL, 7ULL, 42ULL, 0xdeadbeefULL}) {
    SplitMix64 seeder(seed);
    const std::uint64_t workload = seeder.next();
    const std::uint64_t placement = seeder.next();
    const std::uint64_t fault = seeder.next();
    const std::uint64_t market = seeder.next();
    const std::uint64_t lookahead = seeder.next();
    const std::uint64_t resilience = seeder.next();
    const std::uint64_t apptier = seeder.next();

    const SeedStreams streams = derive_streams(seed);
    EXPECT_EQ(streams.workload, workload) << "seed " << seed;
    EXPECT_EQ(streams.placement, placement) << "seed " << seed;
    EXPECT_EQ(streams.fault, fault) << "seed " << seed;
    EXPECT_EQ(streams.market, market) << "seed " << seed;
    EXPECT_EQ(streams.lookahead, lookahead) << "seed " << seed;
    EXPECT_EQ(streams.resilience, resilience) << "seed " << seed;
    EXPECT_EQ(streams.apptier, apptier) << "seed " << seed;
  }
}

TEST(SeedStreams, DistinctStreamsAndSeeds) {
  const SeedStreams a = derive_streams(42);
  const SeedStreams b = derive_streams(43);
  EXPECT_NE(a.workload, a.placement);
  EXPECT_NE(a.workload, a.fault);
  EXPECT_NE(a.workload, a.market);
  EXPECT_NE(a.workload, a.lookahead);
  EXPECT_NE(a.workload, a.resilience);
  EXPECT_NE(a.workload, a.apptier);
  EXPECT_NE(a.workload, b.workload);
  EXPECT_NE(a.lookahead, b.lookahead);
  EXPECT_NE(a.resilience, b.resilience);
  EXPECT_NE(a.apptier, b.apptier);
}

// --- tentpole: clone-continue bit-identity --------------------------------

// Snapshot the telemetry-instrumented Figure 5 smoke mid-run (at a
// window-unaligned instant), restore, continue — and reproduce the exact
// pre-PR golden literals plus the full span CSV byte stream.
TEST(WorldClone, Fig5GoldenCloneContinueIsBitIdentical) {
  const ScenarioConfig config = fig5_config();
  const TelemetryOptions telemetry = fig5_telemetry(config);

  const RunOutput full =
      run_scenario(config, PolicySpec::adaptive(), 42, telemetry);
  const RunOutput resumed = clone_continue(config, PolicySpec::adaptive(), 42,
                                           telemetry, /*snapshot_time=*/40323.7);

  expect_identical_metrics(resumed.metrics, full.metrics);
  EXPECT_EQ(resumed.metrics.policy, full.metrics.policy);
  // Anchor against the historical goldens, not just the sibling run.
  EXPECT_EQ(resumed.metrics.generated, 707184u);
  EXPECT_EQ(resumed.metrics.simulated_events, 1385227u);

  ASSERT_NE(resumed.telemetry, nullptr);
  std::ostringstream csv;
  write_span_csv(csv, *resumed.telemetry->spans());
  const std::string bytes = csv.str();
  EXPECT_EQ(bytes.size(), 14729937u);
  EXPECT_EQ(fnv1a(bytes), 0xbdf90a2e3fd773c6ULL);
}

// Same contract with the whole fault/self-healing layer live: the snapshot
// carries injector RNG sub-streams, pending crash/degrade events, watchdogs,
// and reconciler backoff state. Snapshot lands after the outage window and
// the scripted host crash so their consequences are mid-flight.
TEST(WorldClone, FaultSmokeCloneContinueIsBitIdentical) {
  const ScenarioConfig config = fault_smoke_config();
  const RunOutput full = run_scenario(config, PolicySpec::adaptive(), 7);
  const RunOutput resumed = clone_continue(config, PolicySpec::adaptive(), 7,
                                           std::nullopt,
                                           /*snapshot_time=*/50411.3);
  expect_identical_metrics(resumed.metrics, full.metrics);
  EXPECT_EQ(resumed.metrics.simulated_events, 1387838u);
  EXPECT_GT(resumed.metrics.instance_failures, 0u);
}

// And with a live spot market: price-path RNG, ledger entries, accrued burn,
// pending revocation hard-kills, and the market tick all travel through the
// snapshot; the final bill must come out identical to the cent (bitwise).
TEST(WorldClone, SpotMarketCloneContinueIsBitIdentical) {
  const ScenarioConfig config = spot_smoke_config();
  const RunOutput full = run_scenario(config, PolicySpec::adaptive(), 42);
  const RunOutput resumed = clone_continue(config, PolicySpec::adaptive(), 42,
                                           std::nullopt,
                                           /*snapshot_time=*/9013.9);
  expect_identical_metrics(resumed.metrics, full.metrics);
  EXPECT_GT(resumed.metrics.billed_cost, 0.0);
  EXPECT_GT(resumed.metrics.spot_purchases, 0u);
}

// Satellite: checkpoint with the resilience layer live, snapshot landing
// inside the outage while a retry storm is raging — pending retry and
// timeout events, breaker ring/state, budget tokens, and the shedding
// pending-decision all travel through the snapshot. The span CSV of the
// resumed run must match the uninterrupted run byte for byte.
TEST(WorldClone, RetryStormCloneContinueIsBitIdentical) {
  const ScenarioConfig config = retry_storm_config();
  const TelemetryOptions telemetry = fig5_telemetry(config);
  const RunOutput full =
      run_scenario(config, PolicySpec::adaptive(), 42, telemetry);
  // Mid-outage: the breaker has tripped and retries/timeouts are in flight.
  const RunOutput resumed = clone_continue(config, PolicySpec::adaptive(), 42,
                                           telemetry, /*snapshot_time=*/901.3);
  expect_identical_metrics(resumed.metrics, full.metrics);
  // The storm actually stormed (otherwise this pins nothing).
  EXPECT_GT(full.metrics.client_retries, 0u);
  EXPECT_GT(full.metrics.client_timeouts, 0u);

  ASSERT_NE(full.telemetry, nullptr);
  ASSERT_NE(resumed.telemetry, nullptr);
  std::ostringstream full_csv;
  write_span_csv(full_csv, *full.telemetry->spans());
  std::ostringstream resumed_csv;
  write_span_csv(resumed_csv, *resumed.telemetry->spans());
  EXPECT_EQ(resumed_csv.str().size(), full_csv.str().size());
  EXPECT_EQ(fnv1a(resumed_csv.str()), fnv1a(full_csv.str()));
}

// Snapshot times swept across the run (none window-aligned), including a
// chained snapshot taken on an already-restored world: restoring a restore
// must be as good as the original.
TEST(WorldClone, SnapshotFuzzAtArbitraryTimes) {
  ScenarioConfig config = web_scenario(0.02);
  config.horizon = 2.0 * 3600.0;
  config.web.horizon = config.horizon;
  config.fault.vm_mtbf = 2.0 * 3600.0;
  config.fault.boot_fail_prob = 0.05;
  config.boot_timeout = 300.0;

  const RunOutput full = run_scenario(config, PolicySpec::adaptive(), 11);

  Rng fuzz(0xf0220ed);
  for (int round = 0; round < 5; ++round) {
    const SimTime snap_time = fuzz.uniform(60.0, config.horizon - 60.0);
    const RunOutput resumed = clone_continue(
        config, PolicySpec::adaptive(), 11, std::nullopt, snap_time);
    expect_identical_metrics(resumed.metrics, full.metrics);
  }

  // Chained: snapshot at t1, restore, run to t2, snapshot again, restore.
  World world(config, PolicySpec::adaptive(), 11, std::nullopt);
  world.start();
  world.run_to(1234.5);
  const WorldState first = world.snapshot();
  World middle(config, PolicySpec::adaptive(), 11, first);
  middle.run_to(4321.0);
  const WorldState second = middle.snapshot();
  World last(config, PolicySpec::adaptive(), 11, second);
  last.run_to(config.horizon);
  expect_identical_metrics(last.finish().metrics, full.metrics);
}

// --- satellite: disk checkpoint roundtrip ---------------------------------

TEST(Checkpoint, DiskRoundtripContinuesBitIdentical) {
  const ScenarioConfig config = spot_smoke_config();
  const RunOutput full = run_scenario(config, PolicySpec::adaptive(), 42);

  World world(config, PolicySpec::adaptive(), 42, std::nullopt);
  world.start();
  world.run_to(7777.0);
  const WorldState state = world.snapshot();

  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_checkpoint(buffer, state);
  const WorldState loaded = read_checkpoint(buffer);

  EXPECT_EQ(loaded.now, state.now);
  EXPECT_EQ(loaded.executed_events, state.executed_events);
  EXPECT_EQ(loaded.push_counter, state.push_counter);
  EXPECT_EQ(loaded.datacenter.vms.size(), state.datacenter.vms.size());
  EXPECT_EQ(loaded.policy_present, state.policy_present);
  ASSERT_TRUE(loaded.market.has_value());
  EXPECT_EQ(loaded.telemetry, nullptr);  // disk format excludes telemetry

  World resumed(config, PolicySpec::adaptive(), 42, loaded);
  resumed.run_to(config.horizon);
  expect_identical_metrics(resumed.finish().metrics, full.metrics);
}

// Satellite: the disk codec (v2) serializes the optional resilience section;
// a checkpoint written mid-retry-storm restores to a bit-identical run.
TEST(Checkpoint, DiskRoundtripMidRetryStormIsBitIdentical) {
  const ScenarioConfig config = retry_storm_config();
  const RunOutput full = run_scenario(config, PolicySpec::adaptive(), 42);

  World world(config, PolicySpec::adaptive(), 42, std::nullopt);
  world.start();
  world.run_to(901.3);
  const WorldState state = world.snapshot();
  ASSERT_TRUE(state.resilience.has_value());

  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_checkpoint(buffer, state);
  const WorldState loaded = read_checkpoint(buffer);
  ASSERT_TRUE(loaded.resilience.has_value());
  EXPECT_EQ(loaded.resilience->gateway.in_flight.size(),
            state.resilience->gateway.in_flight.size());
  EXPECT_EQ(loaded.resilience->gateway.retries.size(),
            state.resilience->gateway.retries.size());

  World resumed(config, PolicySpec::adaptive(), 42, loaded);
  resumed.run_to(config.horizon);
  expect_identical_metrics(resumed.finish().metrics, full.metrics);
  EXPECT_GT(full.metrics.client_retries, 0u);
}

TEST(Checkpoint, RejectsGarbageAndTruncation) {
  std::stringstream garbage(std::ios::in | std::ios::out | std::ios::binary);
  garbage << "not a checkpoint";
  EXPECT_THROW(read_checkpoint(garbage), std::runtime_error);

  ScenarioConfig config = web_scenario(0.02);
  config.horizon = 600.0;
  config.web.horizon = config.horizon;
  World world(config, PolicySpec::adaptive(), 3, std::nullopt);
  world.start();
  world.run_to(300.0);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_checkpoint(buffer, world.snapshot());
  const std::string bytes = buffer.str();
  std::stringstream truncated(std::ios::in | std::ios::out | std::ios::binary);
  truncated << bytes.substr(0, bytes.size() / 2);
  EXPECT_THROW(read_checkpoint(truncated), std::runtime_error);
}

// --- lookahead policy -----------------------------------------------------

// K = 1 with no bid levels must never consult the engine or draw from the
// lookahead stream: the run is bit-identical to the adaptive baseline.
TEST(LookaheadPolicy, DisabledSearchIsBitIdenticalToAdaptive) {
  ScenarioConfig config = web_scenario(0.02);
  config.horizon = 6.0 * 3600.0;
  config.web.horizon = config.horizon;

  const RunOutput adaptive =
      run_scenario(config, PolicySpec::adaptive(), 42);
  const RunOutput lookahead =
      run_scenario(config, PolicySpec::lookahead_spec(1, 1), 42);

  expect_identical_metrics(lookahead.metrics, adaptive.metrics);
  ASSERT_EQ(lookahead.decisions.size(), adaptive.decisions.size());
  for (std::size_t i = 0; i < adaptive.decisions.size(); ++i) {
    EXPECT_EQ(lookahead.decisions[i].target_instances,
              adaptive.decisions[i].target_instances);
    EXPECT_EQ(lookahead.decisions[i].achieved_instances,
              adaptive.decisions[i].achieved_instances);
  }
}

// ISSUE 7 acceptance: with the resilience layer fully live, K = 1 lookahead
// still defers every window to Algorithm 1 — clone worlds rebuild and
// restore the gateway/shedding state, so even a mid-storm window changes
// nothing versus plain adaptive.
TEST(LookaheadPolicy, DisabledSearchMatchesAdaptiveWithResilienceOn) {
  const ScenarioConfig config = retry_storm_config();
  const RunOutput adaptive = run_scenario(config, PolicySpec::adaptive(), 42);
  const RunOutput lookahead =
      run_scenario(config, PolicySpec::lookahead_spec(1, 1), 42);
  expect_identical_metrics(lookahead.metrics, adaptive.metrics);
  EXPECT_GT(adaptive.metrics.client_retries, 0u);
}

// An enabled search commits only candidates its clones certified as no
// worse than Algorithm 1's choice — so the realized pool can shrink (cost
// win) but rejections/violations stay in the same regime as adaptive.
TEST(LookaheadPolicy, SearchNeverDegradesQosVersusAdaptive) {
  ScenarioConfig config = web_scenario(0.02);
  config.horizon = 4.0 * 3600.0;
  config.web.horizon = config.horizon;

  const RunMetrics adaptive =
      run_scenario(config, PolicySpec::adaptive(), 42).metrics;
  const RunOutput lookahead_out =
      run_scenario(config, PolicySpec::lookahead_spec(3, 2), 42);
  const RunMetrics& lookahead = lookahead_out.metrics;

  EXPECT_FALSE(lookahead_out.decisions.empty());
  EXPECT_GT(lookahead.completed, 0u);
  // Without a market the what-if cost is the VM-hours proxy, so committed
  // overrides can only shrink the pool.
  EXPECT_LE(lookahead.vm_hours, adaptive.vm_hours * 1.02);
  // The clones' feasibility gate keeps the QoS regime: allow stochastic
  // drift (forecast vs realized arrivals) but not a different regime.
  EXPECT_LE(lookahead.rejection_rate,
            adaptive.rejection_rate + config.modeler.rejection_tolerance);
}

}  // namespace
}  // namespace cloudprov
