// Multi-tenant sharded scale-out: determinism and contention tests.
//
// The load-bearing test here is the golden bit-identity check: a sharded
// run (--shards >= 2, worker threads + barrier) must produce *byte-identical*
// per-tenant metrics and span CSVs to the sequential run (--shards 1) on the
// same tenant set — the conservative-PDES correctness argument made
// executable, following the kernel_golden_test.cc pattern.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <sstream>
#include <vector>

#include "experiment/multi_tenant.h"
#include "profile/wall_profiler.h"
#include "sim/shard_executor.h"
#include "telemetry/export.h"

namespace cloudprov {
namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

std::uint64_t double_bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

/// Field-by-field bit-identity between two runs of the same tenant.
/// wall_seconds is the one honest difference; everything else must match
/// to the last bit (doubles are compared as bit patterns).
void expect_bit_identical(const RunMetrics& a, const RunMetrics& b) {
#define CLOUDPROV_EQ_INT(field) EXPECT_EQ(a.field, b.field) << #field
#define CLOUDPROV_EQ_DBL(field)                              \
  EXPECT_EQ(double_bits(a.field), double_bits(b.field))      \
      << #field << ": " << a.field << " vs " << b.field
  CLOUDPROV_EQ_INT(policy);
  CLOUDPROV_EQ_INT(seed);
  CLOUDPROV_EQ_INT(generated);
  CLOUDPROV_EQ_INT(accepted);
  CLOUDPROV_EQ_INT(rejected);
  CLOUDPROV_EQ_INT(completed);
  CLOUDPROV_EQ_INT(qos_violations);
  CLOUDPROV_EQ_DBL(avg_response_time);
  CLOUDPROV_EQ_DBL(std_response_time);
  CLOUDPROV_EQ_DBL(p95_response_time);
  CLOUDPROV_EQ_DBL(p99_response_time);
  CLOUDPROV_EQ_DBL(min_instances);
  CLOUDPROV_EQ_DBL(max_instances);
  CLOUDPROV_EQ_DBL(avg_instances);
  CLOUDPROV_EQ_DBL(vm_hours);
  CLOUDPROV_EQ_DBL(busy_vm_hours);
  CLOUDPROV_EQ_DBL(utilization);
  CLOUDPROV_EQ_DBL(rejection_rate);
  CLOUDPROV_EQ_INT(instance_failures);
  CLOUDPROV_EQ_INT(vm_crashes);
  CLOUDPROV_EQ_INT(host_crashes);
  CLOUDPROV_EQ_INT(boot_failures);
  CLOUDPROV_EQ_INT(boot_timeouts);
  CLOUDPROV_EQ_INT(lost_requests);
  CLOUDPROV_EQ_DBL(availability);
  CLOUDPROV_EQ_INT(recoveries);
  CLOUDPROV_EQ_DBL(mttr_mean);
  CLOUDPROV_EQ_DBL(mttr_max);
  CLOUDPROV_EQ_INT(reconciler_heals);
  CLOUDPROV_EQ_INT(final_instances);
  CLOUDPROV_EQ_INT(slo_response_alerts);
  CLOUDPROV_EQ_INT(slo_rejection_alerts);
  CLOUDPROV_EQ_INT(drift_windows);
  CLOUDPROV_EQ_INT(spans_traced);
  CLOUDPROV_EQ_DBL(billed_cost);
  CLOUDPROV_EQ_DBL(on_demand_cost);
  CLOUDPROV_EQ_DBL(spot_cost);
  CLOUDPROV_EQ_INT(on_demand_purchases);
  CLOUDPROV_EQ_INT(spot_purchases);
  CLOUDPROV_EQ_INT(spot_revocations);
  CLOUDPROV_EQ_INT(revocation_kills);
  CLOUDPROV_EQ_INT(lost_to_revocations);
  CLOUDPROV_EQ_DBL(spot_price_mean);
  CLOUDPROV_EQ_DBL(spot_price_max);
  CLOUDPROV_EQ_INT(capacity_clips);
  CLOUDPROV_EQ_INT(capacity_denied);
  CLOUDPROV_EQ_INT(simulated_events);
#undef CLOUDPROV_EQ_INT
#undef CLOUDPROV_EQ_DBL
}

std::uint64_t span_csv_hash(const TenantResult& tenant) {
  EXPECT_NE(tenant.telemetry, nullptr);
  EXPECT_NE(tenant.telemetry->spans(), nullptr);
  std::ostringstream out;
  write_span_csv(out, *tenant.telemetry->spans());
  return fnv1a(out.str());
}

/// Mixed web/BoT population under a deliberately tight shared capacity, so
/// the arbiter actually clips (contention is part of what must replay
/// identically across shard counts).
MultiTenantConfig golden_config() {
  MultiTenantConfig config;
  config.tenants = 10;
  config.seed = 2011;
  config.horizon = 1500.0;
  config.window = 60.0;
  config.bot_fraction = 0.3;
  config.tenant_scale = 0.004;
  config.capacity = 20;
  return config;
}

MultiTenantConfig market_config() {
  MultiTenantConfig config;
  config.tenants = 6;
  config.seed = 77;
  config.horizon = 1200.0;
  config.window = 60.0;
  config.bot_fraction = 0.0;
  config.tenant_scale = 0.004;
  config.capacity = 12;
  config.market_enabled = true;
  config.spot_fraction = 0.5;
  config.bid = 0.7;
  return config;
}

// --- shard executor ------------------------------------------------------

TEST(ShardExecutor, CommitScheduleIdenticalAcrossShardCounts) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{3}}) {
    std::vector<std::vector<double>> advances(shards);
    std::vector<double> commits;
    const std::uint64_t windows = run_sharded_windows(
        shards, 60.0, 450.0,
        [&](std::size_t shard, SimTime t) { advances[shard].push_back(t); },
        [&](SimTime t) { commits.push_back(t); });
    EXPECT_EQ(windows, 7u) << shards;  // boundaries 60..420 are < 450
    const std::vector<double> expected_commits{60,  120, 180, 240,
                                               300, 360, 420};
    EXPECT_EQ(commits, expected_commits) << shards;
    std::vector<double> expected_advances = expected_commits;
    expected_advances.push_back(450.0);  // final segment, no commit
    for (std::size_t shard = 0; shard < shards; ++shard) {
      EXPECT_EQ(advances[shard], expected_advances) << shards << "/" << shard;
    }
  }
}

TEST(ShardExecutor, HorizonOnBoundaryCommitsOnlyBelowHorizon) {
  std::vector<double> commits;
  const std::uint64_t windows = run_sharded_windows(
      1, 60.0, 180.0, [](std::size_t, SimTime) {},
      [&](SimTime t) { commits.push_back(t); });
  EXPECT_EQ(windows, 2u);
  EXPECT_EQ(commits, (std::vector<double>{60, 120}));
}

// --- capacity arbiter ----------------------------------------------------

TEST(CapacityArbiter, GrantsInIdOrderUnderContention) {
  CapacityArbiter arbiter(10, 0, 3);
  EXPECT_EQ(arbiter.arbitrate({5, 5, 5}),
            (std::vector<std::size_t>{5, 5, 0}));
  EXPECT_EQ(arbiter.clips(), 1u);
  EXPECT_EQ(arbiter.denied(), 5u);

  // Tenant 0 shrinks: the freed slots go to the lowest starved id.
  EXPECT_EQ(arbiter.arbitrate({2, 5, 5}),
            (std::vector<std::size_t>{2, 5, 3}));
  EXPECT_EQ(arbiter.clips(), 2u);
  EXPECT_EQ(arbiter.denied(), 7u);
  EXPECT_EQ(arbiter.peak_granted(), 10u);
}

TEST(CapacityArbiter, PerTenantCapBindsBeforeSharedCapacity) {
  CapacityArbiter arbiter(10, 3, 3);
  EXPECT_EQ(arbiter.arbitrate({5, 1, 5}),
            (std::vector<std::size_t>{3, 1, 3}));
  EXPECT_EQ(arbiter.clips(), 2u);
  EXPECT_EQ(arbiter.denied(), 4u);
  EXPECT_EQ(arbiter.peak_granted(), 7u);
}

// --- profiler drain (per-shard instances merged at the barrier) ----------

TEST(WallProfilerDrain, MovesTotalsAndPathsThenZeroes) {
  WallProfiler worker(1.0);
  WallProfiler run(1.0);
  worker.begin(ProfileCategory::kShardRun);
  worker.end(ProfileCategory::kShardRun);
  worker.begin(ProfileCategory::kShardBarrier);
  worker.end(ProfileCategory::kShardBarrier);
  worker.drain_into(run);

  const auto run_idx = static_cast<std::size_t>(ProfileCategory::kShardRun);
  EXPECT_EQ(worker.totals()[run_idx].count, 0u);
  EXPECT_TRUE(worker.folded().empty());
  EXPECT_EQ(run.totals()[run_idx].count, 1u);
  const auto wait_idx =
      static_cast<std::size_t>(ProfileCategory::kShardBarrier);
  EXPECT_EQ(run.totals()[wait_idx].count, 1u);
  EXPECT_EQ(run.folded().size(), 2u);

  // Draining again is a no-op; a second batch accumulates.
  worker.drain_into(run);
  EXPECT_EQ(run.totals()[run_idx].count, 1u);
  worker.begin(ProfileCategory::kShardRun);
  worker.end(ProfileCategory::kShardRun);
  worker.drain_into(run);
  EXPECT_EQ(run.totals()[run_idx].count, 2u);
}

// --- tenant population ---------------------------------------------------

TEST(MultiTenant, SpecsAreDeterministicAndMixed) {
  MultiTenantConfig config = golden_config();
  config.tenants = 16;
  config.bot_fraction = 0.5;
  const std::vector<TenantSpec> first = multi_tenant_specs(config);
  const std::vector<TenantSpec> second = multi_tenant_specs(config);
  ASSERT_EQ(first.size(), 16u);
  std::size_t bots = 0;
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].id, i);
    EXPECT_EQ(first[i].seed, second[i].seed);
    EXPECT_EQ(first[i].scenario.workload, second[i].scenario.workload);
    EXPECT_EQ(double_bits(first[i].scenario.scale),
              double_bits(second[i].scenario.scale));
    EXPECT_EQ(double_bits(first[i].scenario.qos.max_response_time),
              double_bits(second[i].scenario.qos.max_response_time));
    if (first[i].scenario.workload == WorkloadKind::kScientific) ++bots;
  }
  EXPECT_GT(bots, 0u);
  EXPECT_LT(bots, first.size());
}

// --- the golden: sharded == sequential, bit for bit ----------------------

TEST(MultiTenantGolden, ShardedMatchesSequentialBitIdentically) {
  const MultiTenantConfig config = golden_config();
  MultiTenantOptions sequential;
  sequential.shards = 1;
  sequential.traced_tenants = 2;
  const MultiTenantResult base = run_multi_tenant(config, sequential);
  ASSERT_EQ(base.tenants.size(), config.tenants);
  EXPECT_EQ(base.windows, 24u);  // 1500 s / 60 s, final boundary == horizon

  std::vector<std::uint64_t> base_span_hashes;
  for (std::size_t i = 0; i < sequential.traced_tenants; ++i) {
    base_span_hashes.push_back(span_csv_hash(base.tenants[i]));
  }

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    MultiTenantOptions options = sequential;
    options.shards = shards;
    const MultiTenantResult sharded = run_multi_tenant(config, options);
    ASSERT_EQ(sharded.tenants.size(), base.tenants.size());
    EXPECT_EQ(sharded.shards, shards);
    EXPECT_EQ(sharded.windows, base.windows);
    for (std::size_t i = 0; i < base.tenants.size(); ++i) {
      SCOPED_TRACE("tenant " + std::to_string(i) + " shards " +
                   std::to_string(shards));
      expect_bit_identical(base.tenants[i].metrics,
                           sharded.tenants[i].metrics);
    }
    for (std::size_t i = 0; i < sequential.traced_tenants; ++i) {
      EXPECT_EQ(span_csv_hash(sharded.tenants[i]), base_span_hashes[i])
          << "span CSV diverged for tenant " << i << " at " << shards
          << " shards";
    }
    // Arbitration history and the aggregate roll up identically too
    // (wall_seconds and the event split across kernels are the only
    // legitimately shard-dependent outputs; total events are conserved).
    EXPECT_EQ(sharded.grant_clips, base.grant_clips);
    EXPECT_EQ(sharded.instances_denied, base.instances_denied);
    EXPECT_EQ(sharded.peak_granted, base.peak_granted);
    EXPECT_EQ(sharded.simulated_events, base.simulated_events);
    EXPECT_EQ(sharded.aggregate.generated, base.aggregate.generated);
    EXPECT_EQ(double_bits(sharded.aggregate.vm_hours),
              double_bits(base.aggregate.vm_hours));
  }
}

TEST(MultiTenantGolden, SharedMarketRunMatchesAcrossShardCounts) {
  const MultiTenantConfig config = market_config();
  MultiTenantOptions sequential;
  const MultiTenantResult base = run_multi_tenant(config, sequential);

  // One shared spot trajectory: every tenant observes the same price path.
  ASSERT_GT(base.tenants.size(), 1u);
  const double mean0 = base.tenants.front().metrics.spot_price_mean;
  EXPECT_GT(mean0, 0.0);
  for (const TenantResult& tenant : base.tenants) {
    EXPECT_EQ(double_bits(tenant.metrics.spot_price_mean),
              double_bits(mean0));
  }

  MultiTenantOptions threaded;
  threaded.shards = 3;
  const MultiTenantResult sharded = run_multi_tenant(config, threaded);
  for (std::size_t i = 0; i < base.tenants.size(); ++i) {
    SCOPED_TRACE("tenant " + std::to_string(i));
    expect_bit_identical(base.tenants[i].metrics, sharded.tenants[i].metrics);
  }
}

// --- contention + aggregate sanity ---------------------------------------

TEST(MultiTenant, TightCapacityProducesContention) {
  MultiTenantConfig config = golden_config();
  config.horizon = 900.0;
  config.tenant_scale = 0.03;        // hot tenants...
  config.capacity = config.tenants;  // ...on ~1 slot each: heavy contention
  const MultiTenantResult result = run_multi_tenant(config, {});

  EXPECT_GT(result.instances_denied, 0u);
  EXPECT_GT(result.grant_clips, 0u);
  EXPECT_LE(result.peak_granted, result.capacity);
  std::uint64_t tenant_clips = 0;
  for (const TenantResult& tenant : result.tenants) {
    tenant_clips += tenant.metrics.capacity_clips;
  }
  EXPECT_GT(tenant_clips, 0u);

  // Conservation: the aggregate is a faithful rollup.
  EXPECT_EQ(result.aggregate.accepted + result.aggregate.rejected,
            result.aggregate.generated);
  EXPECT_GT(result.aggregate.generated, 0u);
  EXPECT_GT(result.simulated_events, 0u);
  EXPECT_EQ(result.aggregate.simulated_events, result.simulated_events);
}

TEST(MultiTenant, ProfiledShardedRunIsNeutralAndAttributed) {
  MultiTenantConfig config = golden_config();
  config.tenants = 6;
  config.horizon = 600.0;
  config.capacity = 12;

  MultiTenantOptions plain;
  plain.shards = 2;
  const MultiTenantResult base = run_multi_tenant(config, plain);

  WallProfiler profiler(/*snapshot_interval_seconds=*/0.01);
  MultiTenantOptions profiled = plain;
  profiled.profiler = &profiler;
  const MultiTenantResult observed = run_multi_tenant(config, profiled);

  // Profiling is output-only even in sharded mode.
  for (std::size_t i = 0; i < base.tenants.size(); ++i) {
    SCOPED_TRACE("tenant " + std::to_string(i));
    expect_bit_identical(base.tenants[i].metrics,
                         observed.tenants[i].metrics);
  }

  // The shard workers' private profilers were drained into the run-level
  // one: shard advance scopes, barrier waits, and the serial arbiter
  // rounds (windows + the t=0 round) all show up.
  const auto& totals = profiler.totals();
  EXPECT_GT(
      totals[static_cast<std::size_t>(ProfileCategory::kShardRun)].count, 0u);
  EXPECT_GT(
      totals[static_cast<std::size_t>(ProfileCategory::kShardBarrier)].count,
      0u);
  EXPECT_EQ(totals[static_cast<std::size_t>(ProfileCategory::kArbiter)].count,
            observed.windows + 1);
  EXPECT_GT(profiler.covered_seconds(), 0.0);
}

// --- per-shard telemetry batching ----------------------------------------

// The fleet window series is accumulated shard-locally and drained at the
// barrier: one row per commit, cumulative sums equal to the final per-tenant
// totals, and — like everything else — bit-identical across shard counts.
TEST(MultiTenant, FleetWindowSeriesSumsToTotalsAcrossShardCounts) {
  const MultiTenantConfig config = golden_config();
  const MultiTenantResult base = run_multi_tenant(config, {});
  // windows counts barrier commits; the executor never commits at the
  // horizon itself, so the final window drains as one extra tail row.
  ASSERT_EQ(base.window_series.size(), base.windows + 1);
  EXPECT_EQ(base.window_series.back().t, config.horizon);

  FleetWindowSample cumulative;
  for (const FleetWindowSample& row : base.window_series) {
    EXPECT_GT(row.t, 0.0);
    cumulative.generated += row.generated;
    cumulative.accepted += row.accepted;
    cumulative.rejected += row.rejected;
    cumulative.completed += row.completed;
    cumulative.qos_violations += row.qos_violations;
  }
  EXPECT_EQ(cumulative.generated, base.aggregate.generated);
  EXPECT_EQ(cumulative.accepted, base.aggregate.accepted);
  EXPECT_EQ(cumulative.rejected, base.aggregate.rejected);
  EXPECT_EQ(cumulative.completed, base.aggregate.completed);
  EXPECT_EQ(cumulative.qos_violations, base.aggregate.qos_violations);

  for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
    MultiTenantOptions options;
    options.shards = shards;
    const MultiTenantResult sharded = run_multi_tenant(config, options);
    ASSERT_EQ(sharded.window_series.size(), base.window_series.size())
        << shards << " shards";
    for (std::size_t i = 0; i < base.window_series.size(); ++i) {
      SCOPED_TRACE("window " + std::to_string(i) + " shards " +
                   std::to_string(shards));
      const FleetWindowSample& a = base.window_series[i];
      const FleetWindowSample& b = sharded.window_series[i];
      EXPECT_EQ(a.t, b.t);
      EXPECT_EQ(a.generated, b.generated);
      EXPECT_EQ(a.accepted, b.accepted);
      EXPECT_EQ(a.rejected, b.rejected);
      EXPECT_EQ(a.completed, b.completed);
      EXPECT_EQ(a.qos_violations, b.qos_violations);
      EXPECT_EQ(a.cache_hits, b.cache_hits);
      EXPECT_EQ(a.cache_misses, b.cache_misses);
    }
  }
}

// Zipf tenants with the cache tier enabled ride the sharded path: specs are
// deterministic, tier state lives on the shared shard kernels, and per-tenant
// results (including every cache_* counter) stay bit-identical across shard
// counts.
TEST(MultiTenantGolden, TieredZipfTenantsMatchAcrossShardCounts) {
  MultiTenantConfig config = golden_config();
  config.tenants = 8;
  config.zipf_fraction = 0.5;
  config.zipf_tiers = true;
  config.horizon = 900.0;

  std::size_t zipf_tenants = 0;
  for (const TenantSpec& spec : multi_tenant_specs(config)) {
    if (spec.scenario.workload == WorkloadKind::kZipf) {
      ++zipf_tenants;
      EXPECT_TRUE(spec.scenario.apptier.enabled);
    }
  }
  ASSERT_GT(zipf_tenants, 0u);
  ASSERT_LT(zipf_tenants, config.tenants);

  const MultiTenantResult base = run_multi_tenant(config, {});
  EXPECT_GT(base.aggregate.cache_hits, 0u);
  std::uint64_t series_hits = 0;
  for (const FleetWindowSample& row : base.window_series) {
    series_hits += row.cache_hits;
  }
  EXPECT_EQ(series_hits, base.aggregate.cache_hits);

  MultiTenantOptions threaded;
  threaded.shards = 3;
  const MultiTenantResult sharded = run_multi_tenant(config, threaded);
  for (std::size_t i = 0; i < base.tenants.size(); ++i) {
    SCOPED_TRACE("tenant " + std::to_string(i));
    expect_bit_identical(base.tenants[i].metrics, sharded.tenants[i].metrics);
    EXPECT_EQ(base.tenants[i].metrics.cache_hits,
              sharded.tenants[i].metrics.cache_hits);
    EXPECT_EQ(base.tenants[i].metrics.cache_misses,
              sharded.tenants[i].metrics.cache_misses);
    EXPECT_EQ(double_bits(base.tenants[i].metrics.cache_vm_hours),
              double_bits(sharded.tenants[i].metrics.cache_vm_hours));
  }
}

TEST(MultiTenant, TenantCsvHasOneRowPerTenant) {
  MultiTenantConfig config = golden_config();
  config.tenants = 4;
  config.horizon = 300.0;
  const MultiTenantResult result = run_multi_tenant(config, {});
  std::ostringstream out;
  write_tenant_csv(out, result);
  const std::string csv = out.str();
  std::size_t rows = 0;
  for (const char c : csv) rows += c == '\n' ? 1u : 0u;
  EXPECT_EQ(rows, config.tenants + 1);  // header + one row per tenant
  EXPECT_NE(csv.find("tenant,kind,seed"), std::string::npos);
}

}  // namespace
}  // namespace cloudprov
