#include <gtest/gtest.h>

#include <sstream>

#include "util/cli.h"
#include "util/csv.h"
#include "util/log.h"

namespace cloudprov {
namespace {

ArgParser make_parser() {
  ArgParser parser("test program");
  parser.add_flag("scale", "1.0", "scale factor", "<double>");
  parser.add_flag("reps", "10", "replications", "<int>");
  parser.add_flag("verbose", "false", "verbose output");
  parser.add_flag("csv", "", "csv output path", "<path>");
  return parser;
}

TEST(ArgParser, Defaults) {
  auto parser = make_parser();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(parser.parse(1, argv));
  EXPECT_EQ(parser.get_double("scale"), 1.0);
  EXPECT_EQ(parser.get_int("reps"), 10);
  EXPECT_FALSE(parser.get_bool("verbose"));
  EXPECT_EQ(parser.get_string("csv"), "");
  EXPECT_FALSE(parser.was_set("scale"));
}

TEST(ArgParser, SpaceSeparatedValues) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--scale", "0.25", "--reps", "3"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_EQ(parser.get_double("scale"), 0.25);
  EXPECT_EQ(parser.get_int("reps"), 3);
  EXPECT_TRUE(parser.was_set("scale"));
}

TEST(ArgParser, EqualsSeparatedValues) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--scale=2.5", "--verbose=true"};
  ASSERT_TRUE(parser.parse(3, argv));
  EXPECT_EQ(parser.get_double("scale"), 2.5);
  EXPECT_TRUE(parser.get_bool("verbose"));
}

TEST(ArgParser, BareAndNegatedBooleans) {
  {
    auto parser = make_parser();
    const char* argv[] = {"prog", "--verbose"};
    ASSERT_TRUE(parser.parse(2, argv));
    EXPECT_TRUE(parser.get_bool("verbose"));
  }
  {
    auto parser = make_parser();
    const char* argv[] = {"prog", "--no-verbose"};
    ASSERT_TRUE(parser.parse(2, argv));
    EXPECT_FALSE(parser.get_bool("verbose"));
  }
}

TEST(ArgParser, BareBooleanFollowedByFlag) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--verbose", "--reps", "2"};
  ASSERT_TRUE(parser.parse(4, argv));
  EXPECT_TRUE(parser.get_bool("verbose"));
  EXPECT_EQ(parser.get_int("reps"), 2);
}

TEST(ArgParser, PositionalArguments) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "input.csv", "--reps", "2", "more"};
  ASSERT_TRUE(parser.parse(5, argv));
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "input.csv");
  EXPECT_EQ(parser.positional()[1], "more");
}

TEST(ArgParser, Errors) {
  {
    auto parser = make_parser();
    const char* argv[] = {"prog", "--unknown", "1"};
    EXPECT_THROW(parser.parse(3, argv), std::invalid_argument);
  }
  {
    auto parser = make_parser();
    const char* argv[] = {"prog", "--reps"};
    EXPECT_THROW(parser.parse(2, argv), std::invalid_argument);
  }
  {
    auto parser = make_parser();
    const char* argv[] = {"prog", "--reps", "abc"};
    ASSERT_TRUE(parser.parse(3, argv));
    EXPECT_THROW(parser.get_int("reps"), std::invalid_argument);
  }
  {
    auto parser = make_parser();
    EXPECT_THROW(parser.add_flag("reps", "1", "dup"), std::invalid_argument);
  }
}

TEST(ArgParser, HelpReturnsFalse) {
  auto parser = make_parser();
  const char* argv[] = {"prog", "--help"};
  ::testing::internal::CaptureStdout();
  EXPECT_FALSE(parser.parse(2, argv));
  const std::string help = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(help.find("--scale"), std::string::npos);
  EXPECT_NE(help.find("scale factor"), std::string::npos);
}

TEST(CsvWriter, QuotesSpecialFields) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  EXPECT_EQ(out.str(),
            "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvRoundTrip, PreservesFields) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_header({"a", "b", "c"});
  writer.write_row({"1,5", "x\"y", "plain"});
  std::istringstream in(out.str());
  CsvReader reader(in);
  auto header = reader.next_row();
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ((*header)[0], "a");
  auto row = reader.next_row();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0], "1,5");
  EXPECT_EQ((*row)[1], "x\"y");
  EXPECT_EQ((*row)[2], "plain");
  EXPECT_FALSE(reader.next_row().has_value());
}

TEST(CsvReader, HandlesCrLf) {
  std::istringstream in("a,b\r\nc,d\r\n");
  CsvReader reader(in);
  auto row = reader.next_row();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1], "b");
}

TEST(CsvWriter, DoubleFormatRoundTrips) {
  const double value = 0.1234567890123456789;
  const std::string text = CsvWriter::format(value);
  EXPECT_EQ(std::stod(text), value);
}

TEST(Logger, ParseLevels) {
  EXPECT_EQ(Logger::parse_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(Logger::parse_level("off"), LogLevel::kOff);
  EXPECT_THROW(Logger::parse_level("bogus"), std::invalid_argument);
}

TEST(Logger, LevelGating) {
  Logger& log = Logger::instance();
  const LogLevel original = log.level();
  log.set_level(LogLevel::kError);
  EXPECT_FALSE(log.enabled(LogLevel::kInfo));
  EXPECT_TRUE(log.enabled(LogLevel::kError));
  log.set_level(original);
}

}  // namespace
}  // namespace cloudprov
