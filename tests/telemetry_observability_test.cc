// Observability monitors: span tracer, model-drift observatory, SLO
// burn-rate alerting, and their exporters.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "experiment/runner.h"
#include "telemetry/drift_monitor.h"
#include "telemetry/export.h"
#include "telemetry/slo_monitor.h"
#include "telemetry/span_tracer.h"
#include "telemetry/telemetry.h"
#include "util/csv.h"

namespace cloudprov {
namespace {

// ---------------------------------------------------------------------------
// Span tracer.

TEST(SpanTracer, SamplingIsDeterministicAndRateShaped) {
  SpanTracer::Options options;
  options.sample_rate = 0.1;
  options.seed = 99;
  const SpanTracer a(options);
  const SpanTracer b(options);
  std::size_t sampled = 0;
  for (std::uint64_t id = 0; id < 10000; ++id) {
    EXPECT_EQ(a.sampled(id), b.sampled(id));  // pure function of (id, seed)
    if (a.sampled(id)) ++sampled;
  }
  // The hash is uniform; 10% +- a loose tolerance over 10k ids.
  EXPECT_GT(sampled, 800u);
  EXPECT_LT(sampled, 1200u);

  options.sample_rate = 0.0;
  EXPECT_FALSE(SpanTracer(options).sampled(1));
  options.sample_rate = 1.0;
  EXPECT_TRUE(SpanTracer(options).sampled(1));
}

TEST(SpanTracer, LifecycleOutcomesAndEviction) {
  SpanTracer::Options options;
  options.sample_rate = 1.0;
  options.capacity = 2;
  SpanTracer tracer(options);

  // Completed: arrival -> admit -> service start -> complete.
  tracer.on_arrival(1.0, 1);
  tracer.on_admit(1.0, 1, 7);
  tracer.on_service_start(1.5, 1, 7);
  tracer.on_complete(2.0, 1, /*qos_violation=*/true);
  // Rejected at admission: never admitted, no VM.
  tracer.on_arrival(1.1, 2);
  tracer.on_reject(1.1, 2);
  // Lost while queued: admitted but the instance died before service.
  tracer.on_arrival(1.2, 3);
  tracer.on_admit(1.2, 3, 9);
  tracer.on_lost(1.8, 3);

  EXPECT_EQ(tracer.traced(), 3u);
  EXPECT_EQ(tracer.in_flight(), 0u);
  EXPECT_EQ(tracer.dropped(), 1u);  // capacity 2: the completed trace evicted
  ASSERT_EQ(tracer.finished().size(), 2u);

  const SpanTracer::RequestTrace& rejected = tracer.finished()[0];
  EXPECT_EQ(rejected.trace_id, 2u);
  EXPECT_EQ(rejected.outcome, SpanTracer::Outcome::kRejected);
  EXPECT_EQ(rejected.vm_id, 0u);
  EXPECT_DOUBLE_EQ(rejected.finish, 1.1);

  const SpanTracer::RequestTrace& lost = tracer.finished()[1];
  EXPECT_EQ(lost.trace_id, 3u);
  EXPECT_EQ(lost.outcome, SpanTracer::Outcome::kLost);
  EXPECT_EQ(lost.vm_id, 9u);
  EXPECT_DOUBLE_EQ(lost.service_start, 0.0);  // never reached service
}

TEST(SpanTracer, SpanCsvListsDerivedChildSpans) {
  SpanTracer::Options options;
  options.sample_rate = 1.0;
  SpanTracer tracer(options);
  tracer.on_arrival(1.0, 1);
  tracer.on_admit(1.0, 1, 7);
  tracer.on_service_start(1.5, 1, 7);
  tracer.on_complete(2.0, 1, false);

  std::ostringstream out;
  write_span_csv(out, tracer);
  std::istringstream in(out.str());
  CsvReader reader(in);
  const auto header = reader.next_row();
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ((*header)[0], "trace_id");
  std::vector<std::vector<std::string>> rows;
  while (const auto row = reader.next_row()) rows.push_back(*row);
  // admission + queue_wait + service for the one completed trace.
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][1], "admission");
  EXPECT_EQ(rows[1][1], "queue_wait");
  EXPECT_EQ(std::stod(rows[1][4]), 0.5);  // 1.0 -> 1.5
  EXPECT_EQ(rows[2][1], "service");
  EXPECT_EQ(std::stod(rows[2][4]), 0.5);  // 1.5 -> 2.0
  EXPECT_EQ(rows[2][6], "completed");
}

// Acceptance criterion: with sampling on, the same seed produces the same
// span CSV byte for byte.
TEST(SpanTracer, SameSeedSameSpanCsvInWebScenario) {
  ScenarioConfig config = web_scenario(0.001);
  config.horizon = 4.0 * 3600.0;
  config.web.horizon = config.horizon;
  TelemetryOptions opts;
  opts.trace_capacity = 1 << 12;
  opts.span_sample_rate = 0.1;
  opts.span_seed = 17;

  std::string csv[2];
  for (std::string& text : csv) {
    const RunOutput output =
        run_scenario(config, PolicySpec::adaptive(), 1234, opts);
    ASSERT_NE(output.telemetry, nullptr);
    ASSERT_NE(output.telemetry->spans(), nullptr);
    std::ostringstream out;
    write_span_csv(out, *output.telemetry->spans());
    text = out.str();
  }
  EXPECT_FALSE(csv[0].empty());
  EXPECT_GT(csv[0].size(), csv[0].find('\n') + 1)
      << "span CSV has no data rows";
  EXPECT_EQ(csv[0], csv[1]);
}

// ---------------------------------------------------------------------------
// Snapshot::diff member (windowed view used by the monitors).

TEST(MetricsRegistry, SnapshotDiffMember) {
  MetricsRegistry registry;
  registry.counter("a").add(3);
  registry.histogram("h", {1.0}).observe(0.5);
  const auto base = registry.snapshot();
  registry.counter("a").add(4);
  registry.histogram("h", {1.0}).observe(0.25);
  const auto delta = registry.snapshot().diff(base);
  EXPECT_EQ(delta.counters[0].value, 4u);
  EXPECT_EQ(delta.histograms[0].count, 1u);
  EXPECT_DOUBLE_EQ(delta.histograms[0].sum, 0.25);
}

// ---------------------------------------------------------------------------
// Drift monitor.

// Acceptance criterion: windowed MAPE/bias/coverage match a hand-computed
// three-window example.
TEST(DriftMonitor, ThreeWindowHandComputedErrorStats) {
  MetricsRegistry registry;
  TraceBuffer trace(256);
  Counter& arrived = registry.counter("requests_arrived");
  Counter& completed = registry.counter("requests_completed");
  Counter& rejected = registry.counter("requests_rejected");
  Histogram& response = registry.histogram("response_time_seconds", {10.0});

  DriftMonitor::Config config;
  config.qos_max_response_time = 0.25;
  DriftMonitor drift(registry, trace, config);

  auto predict = [](double ts, double rej, double util) {
    DriftMonitor::Prediction p;
    p.response_time = ts;
    p.rejection = rej;
    p.utilization = util;
    return p;
  };

  // Window 1 [0,100): predicted 0.2, observed mean 0.1 -> error +0.1.
  drift.on_decision(0.0, predict(0.2, 0.0, 0.5), 0.0, 0.0);
  arrived.add(2);
  completed.add(1);
  response.observe(0.1);
  // Window 2 [100,200): predicted 0.3, observed mean 0.2 -> error +0.1.
  drift.on_decision(100.0, predict(0.3, 0.2, 0.5), 1.0, 0.5);
  arrived.add(4);
  rejected.add(1);
  completed.add(2);
  response.observe(0.1);
  response.observe(0.3);
  // Window 3 [200,300): predicted 0.1, observed mean 0.4 -> error -0.3,
  // and 0.4 > Ts = 0.25 breaks the k-bound guarantee for this window.
  drift.on_decision(200.0, predict(0.1, 0.5, 0.5), 2.0, 1.5);
  arrived.add(2);
  rejected.add(1);
  completed.add(1);
  response.observe(0.4);
  drift.finalize(300.0, 3.0, 2.0);

  ASSERT_EQ(drift.windows().size(), 3u);
  EXPECT_EQ(drift.closed_windows(), 3u);
  const DriftMonitor::WindowRecord& w1 = drift.windows()[0];
  EXPECT_DOUBLE_EQ(w1.observed_response_time, 0.1);
  EXPECT_NEAR(w1.response_error, 0.1, 1e-12);
  EXPECT_TRUE(w1.within_bound);
  EXPECT_EQ(w1.arrivals, 2u);
  const DriftMonitor::WindowRecord& w2 = drift.windows()[1];
  EXPECT_DOUBLE_EQ(w2.observed_rejection, 0.25);  // 1 of 4 arrivals
  EXPECT_NEAR(w2.rejection_error, -0.05, 1e-12);
  EXPECT_DOUBLE_EQ(w2.observed_utilization, 1.0);  // (1.5-0.5)/(2-1)
  const DriftMonitor::WindowRecord& w3 = drift.windows()[2];
  EXPECT_FALSE(w3.within_bound);

  // MAPE = 100 * mean(0.1/0.1, 0.1/0.2, 0.3/0.4) = 75%.
  const DriftMonitor::ErrorStats stats = drift.response_error();
  EXPECT_EQ(stats.windows, 3u);
  EXPECT_NEAR(stats.mape, 75.0, 1e-9);
  // Bias = (0.1 + 0.1 - 0.3) / 3.
  EXPECT_NEAR(stats.bias, -0.1 / 3.0, 1e-12);
  // Coverage: 2 of 3 windows stayed within Ts.
  EXPECT_NEAR(stats.coverage, 2.0 / 3.0, 1e-12);

  // One drift counter-lane sample per metric per closed window.
  std::size_t drift_events = 0;
  for (const auto& event : trace.events()) {
    if (std::string(event.category) == "drift") {
      EXPECT_EQ(event.track, kTrackDrift);
      ++drift_events;
    }
  }
  EXPECT_EQ(drift_events, 9u);
}

TEST(DriftMonitor, DriftCsvFromWebSmokeIsNonEmptyAndParseable) {
  ScenarioConfig config = web_scenario(0.001);
  config.horizon = 4.0 * 3600.0;
  config.web.horizon = config.horizon;
  TelemetryOptions opts;
  opts.trace_capacity = 1 << 12;
  opts.drift_enabled = true;
  opts.drift.qos_max_response_time = config.qos.max_response_time;
  const RunOutput output =
      run_scenario(config, PolicySpec::adaptive(), 5, opts);
  ASSERT_NE(output.telemetry, nullptr);
  ASSERT_NE(output.telemetry->drift(), nullptr);
  EXPECT_GT(output.metrics.drift_windows, 0u);

  std::ostringstream out;
  write_drift_csv(out, *output.telemetry->drift());
  std::istringstream in(out.str());
  CsvReader reader(in);
  const auto header = reader.next_row();
  ASSERT_TRUE(header.has_value());
  ASSERT_EQ(header->size(), 19u);
  std::size_t rows = 0;
  while (const auto row = reader.next_row()) {
    ASSERT_EQ(row->size(), header->size());
    EXPECT_LT(std::stod((*row)[0]), std::stod((*row)[1]));  // start < end
    ++rows;
  }
  EXPECT_EQ(rows, output.telemetry->drift()->windows().size());
  EXPECT_GT(rows, 0u);
}

// ---------------------------------------------------------------------------
// SLO burn-rate monitor.

SloMonitor::Config one_rule_config() {
  SloMonitor::Config config;
  config.response_budget = 0.05;
  config.rejection_budget = 0.01;
  config.windows = {{300.0, 3600.0, 14.4}};
  config.eval_interval = 60.0;
  config.log_alerts = false;
  return config;
}

TEST(SloMonitor, NoAlertWithoutAFullWindowOfEvidence) {
  MetricsRegistry registry;
  TraceBuffer trace(64);
  Counter& completed = registry.counter("requests_completed");
  Counter& violations = registry.counter("qos_violations");
  SloMonitor slo(registry, trace, one_rule_config());

  slo.evaluate(0.0);
  completed.add(10);
  violations.add(10);  // 100% bad, but the short window has no base yet
  slo.evaluate(100.0);
  EXPECT_EQ(slo.response_alerts(), 0u);
  EXPECT_TRUE(slo.alerts().empty());
}

TEST(SloMonitor, RaisesOnceAndClearsOnRecovery) {
  MetricsRegistry registry;
  TraceBuffer trace(64);
  Counter& completed = registry.counter("requests_completed");
  Counter& violations = registry.counter("qos_violations");
  SloMonitor slo(registry, trace, one_rule_config());

  slo.evaluate(0.0);
  // 90% of completions violate Ts over [0, 3600]: burn = 0.9/0.05 = 18x on
  // both the 5-min and 1-h windows -> raise.
  completed.add(100);
  violations.add(90);
  slo.evaluate(3600.0);
  ASSERT_EQ(slo.alerts().size(), 1u);
  EXPECT_TRUE(slo.alerts()[0].raised);
  EXPECT_EQ(slo.alerts()[0].objective, SloMonitor::Objective::kResponse);
  EXPECT_NEAR(slo.alerts()[0].burn_short, 18.0, 1e-9);
  EXPECT_EQ(slo.response_alerts(), 1u);
  EXPECT_NEAR(slo.worst_burn_rate(), 18.0, 1e-9);

  // Sustained incident: still burning at the next evaluation, but the alert
  // edge fired once.
  completed.add(10);
  violations.add(9);
  slo.evaluate(3660.0);
  EXPECT_EQ(slo.alerts().size(), 1u);
  EXPECT_EQ(slo.response_alerts(), 1u);

  // Recovery: a clean 5-min window drops the short burn under threshold.
  completed.add(100);
  slo.evaluate(3990.0);
  ASSERT_EQ(slo.alerts().size(), 2u);
  EXPECT_FALSE(slo.alerts()[1].raised);
  EXPECT_EQ(slo.response_alerts(), 1u);  // clears are not counted as alerts

  // One instant per edge on the SLO lane.
  std::size_t edges = 0;
  for (const auto& event : trace.events()) {
    if (std::string(event.category) == "slo") {
      EXPECT_EQ(event.track, kTrackSlo);
      ++edges;
    }
  }
  EXPECT_EQ(edges, 2u);
}

TEST(SloMonitor, RejectionObjectiveUsesArrivalsAndItsOwnBudget) {
  MetricsRegistry registry;
  TraceBuffer trace(64);
  Counter& arrived = registry.counter("requests_arrived");
  Counter& rejected = registry.counter("requests_rejected");
  SloMonitor slo(registry, trace, one_rule_config());

  slo.evaluate(0.0);
  // 20% rejections against a 1% budget: burn 20x -> raise.
  arrived.add(1000);
  rejected.add(200);
  slo.evaluate(3600.0);
  EXPECT_EQ(slo.rejection_alerts(), 1u);
  EXPECT_EQ(slo.response_alerts(), 0u);
}

TEST(SloMonitor, SloCsvRoundTripsThroughReader) {
  MetricsRegistry registry;
  TraceBuffer trace(64);
  registry.counter("requests_completed").add(10);
  SloMonitor slo(registry, trace, one_rule_config());
  slo.evaluate(0.0);
  slo.evaluate(60.0);

  std::ostringstream out;
  write_slo_csv(out, slo);
  std::istringstream in(out.str());
  CsvReader reader(in);
  const auto header = reader.next_row();
  ASSERT_TRUE(header.has_value());
  ASSERT_EQ(header->size(), 9u);
  std::size_t rows = 0;
  while (const auto row = reader.next_row()) {
    ASSERT_EQ(row->size(), 9u);
    EXPECT_TRUE((*row)[1] == "response_time" || (*row)[1] == "rejection");
    ++rows;
  }
  // 2 evaluations x 1 rule x 2 objectives.
  EXPECT_EQ(rows, 4u);
}

TEST(SloMonitor, RejectsInvalidConfig) {
  MetricsRegistry registry;
  TraceBuffer trace(64);
  SloMonitor::Config bad = one_rule_config();
  bad.response_budget = 0.0;
  EXPECT_THROW(SloMonitor(registry, trace, bad), std::invalid_argument);
  bad = one_rule_config();
  bad.windows.clear();
  EXPECT_THROW(SloMonitor(registry, trace, bad), std::invalid_argument);
  bad = one_rule_config();
  bad.windows[0].long_window = 10.0;  // shorter than the short window
  EXPECT_THROW(SloMonitor(registry, trace, bad), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Prometheus text exporter.

TEST(Export, PrometheusTextFollowsExpositionConventions) {
  MetricsRegistry registry;
  registry.counter("hits").add(42);
  registry.gauge("depth").set(2.5);
  Histogram& h = registry.histogram("latency_seconds", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);

  std::ostringstream out;
  write_prometheus_text(out, registry.snapshot());
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE cloudprov_hits_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# HELP cloudprov_hits_total"), std::string::npos);
  EXPECT_NE(text.find("cloudprov_hits_total 42\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cloudprov_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("cloudprov_depth 2.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cloudprov_latency_seconds histogram"),
            std::string::npos);
  // Cumulative buckets: 1 obs <= 0.1, 2 obs <= 1.0, 3 in +Inf.
  EXPECT_NE(text.find("cloudprov_latency_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("cloudprov_latency_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("cloudprov_latency_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("cloudprov_latency_seconds_count 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("cloudprov_latency_seconds_sum "), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: monitors populate RunMetrics.

TEST(Observability, RunMetricsCarryMonitorOutputs) {
  ScenarioConfig config = web_scenario(0.001);
  config.horizon = 4.0 * 3600.0;
  config.web.horizon = config.horizon;
  TelemetryOptions opts;
  opts.span_sample_rate = 0.5;
  opts.drift_enabled = true;
  opts.drift.qos_max_response_time = config.qos.max_response_time;
  opts.slo_enabled = true;
  opts.slo.log_alerts = false;
  const RunOutput output =
      run_scenario(config, PolicySpec::adaptive(), 11, opts);
  EXPECT_GT(output.metrics.spans_traced, 0u);
  EXPECT_GT(output.metrics.drift_windows, 0u);
  EXPECT_GT(output.metrics.drift_response_mape, 0.0);
  EXPECT_GE(output.metrics.slo_worst_burn_rate, 0.0);
  // A healthy small web run should not page.
  EXPECT_EQ(output.metrics.slo_response_alerts, 0u);
}

}  // namespace
}  // namespace cloudprov
