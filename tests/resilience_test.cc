// Request-path resilience tests (src/resilience): retry gateway semantics
// (attempts, backoff, deadline, token-bucket budget), circuit-breaker state
// machine, client timeouts and wasted completions, server-side load shedding
// (deadline + brownout), the strict-no-op guarantee of a neutral-enabled
// layer, and determinism under a retry storm.
#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "core/application_provisioner.h"
#include "experiment/runner.h"
#include "resilience/retry_gateway.h"
#include "resilience/shedding_admission.h"

namespace cloudprov {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct TestWorld {
  Simulation sim;
  Datacenter datacenter;

  explicit TestWorld(std::size_t hosts = 2)
      : datacenter(sim, make_dc(hosts),
                   std::make_unique<LeastLoadedPlacement>()) {}

  static DatacenterConfig make_dc(std::size_t hosts) {
    DatacenterConfig config;
    config.host_count = hosts;
    return config;
  }
};

ProvisionerConfig prov_config(std::size_t queue_bound = 0) {
  ProvisionerConfig config;
  config.fixed_queue_bound = queue_bound;
  return config;
}

Request make_request(std::uint64_t id, SimTime arrival, double demand,
                     int priority = 0, SimTime deadline = kInf) {
  Request request;
  request.id = id;
  request.arrival_time = arrival;
  request.service_demand = demand;
  request.priority = priority;
  request.deadline = deadline;
  return request;
}

/// Schedules gateway.on_request at the request's arrival time.
void send(Simulation& sim, RetryGateway& gateway, const Request& request) {
  sim.schedule_at(request.arrival_time,
                  [&gateway, request] { gateway.on_request(request); });
}

// ------------------------------------------------------------ retry gateway

TEST(RetryGateway, NeutralGatewayForwardsAndCountsOnly) {
  TestWorld world;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, QosTargets{},
                                     prov_config());
  provisioner.scale_to(1);
  ResilienceConfig config;
  config.enabled = true;  // every feature at its neutral default
  RetryGateway gateway(world.sim, provisioner, config, Rng(1));
  send(world.sim, gateway, make_request(1, 0.0, 0.05));
  world.sim.run();
  EXPECT_EQ(provisioner.completed(), 1u);
  EXPECT_EQ(gateway.client_requests(), 1u);
  EXPECT_EQ(gateway.client_attempts(), 1u);
  EXPECT_EQ(gateway.client_succeeded(), 1u);
  EXPECT_EQ(gateway.client_retries(), 0u);
  EXPECT_EQ(gateway.client_failed(), 0u);
}

TEST(RetryGateway, RejectedAttemptRetriesAndSucceeds) {
  TestWorld world;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, QosTargets{},
                                     prov_config());
  ResilienceConfig config;
  config.enabled = true;
  config.retry.max_attempts = 3;
  config.retry.backoff = RetryPolicyConfig::Backoff::kFixed;
  config.retry.base = 1.0;
  RetryGateway gateway(world.sim, provisioner, config, Rng(2));
  // Attempt 1 at t=0 hits an empty pool; capacity arrives before the retry.
  world.sim.schedule_at(0.5, [&provisioner] { provisioner.scale_to(1); });
  send(world.sim, gateway, make_request(1, 0.0, 0.05));
  world.sim.run();
  EXPECT_EQ(gateway.client_requests(), 1u);
  EXPECT_EQ(gateway.client_attempts(), 2u);
  EXPECT_EQ(gateway.client_retries(), 1u);
  EXPECT_EQ(gateway.client_succeeded(), 1u);
  EXPECT_EQ(gateway.client_failed(), 0u);
  EXPECT_EQ(provisioner.completed(), 1u);
  // The retry carried a synthetic id, not the broker's.
  EXPECT_EQ(provisioner.rejected(), 1u);
}

TEST(RetryGateway, AttemptBoundExhaustionFails) {
  TestWorld world;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, QosTargets{},
                                     prov_config());  // pool stays empty
  ResilienceConfig config;
  config.enabled = true;
  config.retry.max_attempts = 2;
  config.retry.backoff = RetryPolicyConfig::Backoff::kFixed;
  config.retry.base = 0.1;
  RetryGateway gateway(world.sim, provisioner, config, Rng(3));
  send(world.sim, gateway, make_request(1, 0.0, 0.05));
  world.sim.run();
  EXPECT_EQ(gateway.client_attempts(), 2u);
  EXPECT_EQ(gateway.client_retries(), 1u);
  EXPECT_EQ(gateway.client_failed(), 1u);
  EXPECT_EQ(gateway.client_succeeded(), 0u);
}

TEST(RetryGateway, UnboundedRetriesStopAtRequestDeadline) {
  TestWorld world;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, QosTargets{},
                                     prov_config());  // pool stays empty
  ResilienceConfig config;
  config.enabled = true;
  config.request_deadline = 1.0;
  config.retry.max_attempts = 0;  // unbounded
  config.retry.backoff = RetryPolicyConfig::Backoff::kFixed;
  config.retry.base = 0.3;
  RetryGateway gateway(world.sim, provisioner, config, Rng(4));
  send(world.sim, gateway, make_request(1, 0.0, 0.05));
  world.sim.run();
  // Attempts at t = 0, 0.3, 0.6, 0.9; the next retry would land at 1.2,
  // past the deadline anchored at the first arrival.
  EXPECT_EQ(gateway.client_attempts(), 4u);
  EXPECT_EQ(gateway.client_retries(), 3u);
  EXPECT_EQ(gateway.client_failed(), 1u);
  EXPECT_LE(world.sim.now(), 1.0);
}

TEST(RetryGateway, JitterBackoffStaysWithinBounds) {
  TestWorld world;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, QosTargets{},
                                     prov_config());  // pool stays empty
  ResilienceConfig config;
  config.enabled = true;
  config.retry.max_attempts = 0;
  config.retry.backoff = RetryPolicyConfig::Backoff::kExpoJitter;
  config.retry.base = 0.05;
  config.retry.cap = 0.4;
  RetryGateway gateway(world.sim, provisioner, config, Rng(5));
  send(world.sim, gateway, make_request(1, 0.0, 0.05));
  // Inspect each scheduled retry delay through the checkpoint surface.
  SimTime last_fire = 0.0;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(world.sim.step());  // the send, then each retry
    const RetryGateway::Snapshot snap = gateway.checkpoint();
    ASSERT_EQ(snap.retries.size(), 1u);
    // The stored fire time is now + delay; recovering the delay by
    // subtraction costs an ulp, hence the epsilon.
    const SimTime delay = snap.retries[0].event.time - world.sim.now();
    EXPECT_GE(delay, config.retry.base - 1e-12);
    EXPECT_LE(delay, config.retry.cap + 1e-12);
    EXPECT_GT(snap.retries[0].event.time, last_fire);
    last_fire = snap.retries[0].event.time;
  }
}

TEST(RetryGateway, BudgetTokenBucketDeniesWhenDry) {
  TestWorld world;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, QosTargets{},
                                     prov_config());  // pool stays empty
  ResilienceConfig config;
  config.enabled = true;
  config.retry.max_attempts = 0;
  config.retry.backoff = RetryPolicyConfig::Backoff::kFixed;
  config.retry.base = 0.1;
  config.budget.enabled = true;
  config.budget.ratio = 0.5;
  config.budget.burst = 1.0;
  RetryGateway gateway(world.sim, provisioner, config, Rng(6));
  send(world.sim, gateway, make_request(1, 0.0, 0.05));
  world.sim.run();
  // The bucket starts at burst (1 token): one retry spends it, the next is
  // denied — unbounded attempts notwithstanding.
  EXPECT_EQ(gateway.client_retries(), 1u);
  EXPECT_EQ(gateway.retry_budget_denied(), 1u);
  EXPECT_EQ(gateway.client_failed(), 1u);
  EXPECT_DOUBLE_EQ(gateway.budget_tokens(), 0.0);
}

TEST(RetryGateway, FreshTrafficRefillsBudget) {
  TestWorld world;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, QosTargets{},
                                     prov_config());  // pool stays empty
  ResilienceConfig config;
  config.enabled = true;
  config.retry.max_attempts = 2;
  config.retry.backoff = RetryPolicyConfig::Backoff::kFixed;
  config.retry.base = 0.1;
  config.budget.enabled = true;
  config.budget.ratio = 0.5;
  config.budget.burst = 1.0;
  RetryGateway gateway(world.sim, provisioner, config, Rng(7));
  // Request 1 spends the initial token; requests 2 and 3 each earn 0.5, so
  // request 3's retry finds a full token again.
  send(world.sim, gateway, make_request(1, 0.0, 0.05));
  send(world.sim, gateway, make_request(2, 1.0, 0.05));
  send(world.sim, gateway, make_request(3, 2.0, 0.05));
  world.sim.run();
  EXPECT_EQ(gateway.client_retries(), 2u);
  EXPECT_EQ(gateway.retry_budget_denied(), 1u);
  EXPECT_EQ(gateway.client_failed(), 3u);
}

// ---------------------------------------------------------- circuit breaker

ResilienceConfig breaker_config() {
  ResilienceConfig config;
  config.enabled = true;
  config.breaker.enabled = true;
  config.breaker.window = 8;
  config.breaker.failure_threshold = 0.5;
  config.breaker.min_volume = 4;
  config.breaker.open_duration = 5.0;
  config.breaker.half_open_probes = 2;
  return config;
}

TEST(CircuitBreaker, OpensFastFailsProbesAndCloses) {
  TestWorld world;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, QosTargets{},
                                     prov_config());
  RetryGateway gateway(world.sim, provisioner, breaker_config(), Rng(8));
  // Four rejections against the empty pool trip the breaker at t=3.
  for (std::uint64_t i = 0; i < 4; ++i) {
    send(world.sim, gateway, make_request(i + 1, static_cast<double>(i), 0.01));
  }
  // Open until t=8: these two never reach the provisioner.
  send(world.sim, gateway, make_request(5, 4.0, 0.01));
  send(world.sim, gateway, make_request(6, 5.0, 0.01));
  // Capacity heals before the half-open window.
  world.sim.schedule_at(7.0, [&provisioner] { provisioner.scale_to(1); });
  // Two successful probes close the breaker; the next request is normal.
  send(world.sim, gateway, make_request(7, 9.0, 0.01));
  send(world.sim, gateway, make_request(8, 10.0, 0.01));
  send(world.sim, gateway, make_request(9, 11.0, 0.01));
  world.sim.run();
  EXPECT_EQ(gateway.breaker_opens(), 1u);
  EXPECT_EQ(gateway.breaker_half_opens(), 1u);
  EXPECT_EQ(gateway.breaker_closes(), 1u);
  EXPECT_EQ(gateway.breaker_fast_fails(), 2u);
  EXPECT_EQ(gateway.breaker_state(), RetryGateway::BreakerState::kClosed);
  EXPECT_EQ(gateway.client_succeeded(), 3u);
  EXPECT_EQ(gateway.client_failed(), 6u);
  // Fast-failed attempts never hit the provisioner's reject counter.
  EXPECT_EQ(provisioner.rejected(), 4u);
}

TEST(CircuitBreaker, FailedProbeReopens) {
  TestWorld world;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, QosTargets{},
                                     prov_config());  // pool stays empty
  RetryGateway gateway(world.sim, provisioner, breaker_config(), Rng(9));
  for (std::uint64_t i = 0; i < 4; ++i) {
    send(world.sim, gateway, make_request(i + 1, static_cast<double>(i), 0.01));
  }
  // t=9 is past the open window; the probe is admitted to the still-empty
  // pool, rejected, and the breaker re-opens from half-open.
  send(world.sim, gateway, make_request(5, 9.0, 0.01));
  world.sim.run();
  EXPECT_EQ(gateway.breaker_opens(), 2u);
  EXPECT_EQ(gateway.breaker_half_opens(), 1u);
  EXPECT_EQ(gateway.breaker_closes(), 0u);
  EXPECT_EQ(gateway.breaker_state(), RetryGateway::BreakerState::kOpen);
}

// ------------------------------------------------- timeouts & wasted work

TEST(RetryGateway, TimeoutAbandonsAttemptAndCountsWastedCompletion) {
  TestWorld world;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, QosTargets{},
                                     prov_config(/*queue_bound=*/10));
  provisioner.scale_to(1);
  ResilienceConfig config;
  config.enabled = true;
  config.attempt_timeout = 0.15;
  RetryGateway gateway(world.sim, provisioner, config, Rng(10));
  // One VM serving FIFO at 0.1 s per request: completions at 0.1, 0.2, 0.3.
  // The client's patience ends at arrival + 0.15.
  for (std::uint64_t i = 0; i < 3; ++i) {
    send(world.sim, gateway, make_request(i + 1, 0.0, 0.1));
  }
  world.sim.run();
  EXPECT_EQ(gateway.client_succeeded(), 1u);
  EXPECT_EQ(gateway.client_timeouts(), 2u);
  EXPECT_EQ(gateway.wasted_completions(), 2u);
  EXPECT_EQ(gateway.client_failed(), 2u);  // no retries configured
  // The server finished all three: that is exactly the wasted capacity.
  EXPECT_EQ(provisioner.completed(), 3u);
}

// ------------------------------------------------------------ load shedding

TEST(SheddingAdmission, DeadlineShedsDoomedRequests) {
  TestWorld world;
  ShedConfig shed;
  shed.deadline_enabled = true;
  auto policy = std::make_unique<SheddingAdmission>(shed);
  SheddingAdmission* shedding = policy.get();
  ApplicationProvisioner provisioner(world.sim, world.datacenter, QosTargets{},
                                     prov_config(), std::move(policy));
  provisioner.scale_to(1);
  // Tm estimate is 0.1 s: a deadline 0.05 s out is unmeetable, 0.5 s is fine.
  world.sim.schedule_at(0.0, [&] {
    provisioner.on_request(make_request(1, 0.0, 0.05, 0, /*deadline=*/0.05));
    provisioner.on_request(make_request(2, 0.0, 0.05, 0, /*deadline=*/0.5));
    provisioner.on_request(make_request(3, 0.0, 0.05));  // no deadline
  });
  world.sim.run();
  shedding->flush();
  EXPECT_EQ(shedding->shed_deadline(), 1u);
  EXPECT_EQ(provisioner.rejected(), 1u);
  EXPECT_EQ(provisioner.completed(), 2u);
}

TEST(SheddingAdmission, BrownoutShedsLowPriorityOnly) {
  TestWorld world;
  ShedConfig shed;
  shed.brownout_enabled = true;
  shed.brownout_utilization = 0.0;  // always browned out
  shed.brownout_fraction = 1.0;     // shed every low-priority request
  shed.brownout_priority = 1;
  auto policy = std::make_unique<SheddingAdmission>(shed);
  SheddingAdmission* shedding = policy.get();
  ApplicationProvisioner provisioner(world.sim, world.datacenter, QosTargets{},
                                     prov_config(), std::move(policy));
  provisioner.scale_to(1);
  world.sim.schedule_at(0.0, [&] {
    provisioner.on_request(make_request(1, 0.0, 0.05, /*priority=*/0));
    provisioner.on_request(make_request(2, 0.0, 0.05, /*priority=*/1));
  });
  world.sim.run();
  shedding->flush();
  EXPECT_EQ(shedding->shed_brownout(), 1u);
  EXPECT_EQ(provisioner.rejected(), 1u);
  EXPECT_EQ(provisioner.completed(), 1u);
}

// ------------------------------------------- strict no-op & determinism

ScenarioConfig small_web() {
  ScenarioConfig config = web_scenario(0.01);
  config.horizon = 3600.0;
  config.web.horizon = config.horizon;
  return config;
}

void expect_same_simulation(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.qos_violations, b.qos_violations);
  EXPECT_EQ(a.simulated_events, b.simulated_events);
  EXPECT_EQ(a.avg_response_time, b.avg_response_time);
  EXPECT_EQ(a.p99_response_time, b.p99_response_time);
  EXPECT_EQ(a.vm_hours, b.vm_hours);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.max_instances, b.max_instances);
}

TEST(ResilienceNoOp, NeutralEnabledIsBitIdenticalToDisabled) {
  const ScenarioConfig base = small_web();
  ScenarioConfig neutral = base;
  neutral.resilience.enabled = true;  // every feature off
  const PolicySpec policy = PolicySpec::adaptive();
  const RunMetrics off = run_scenario(base, policy, 42).metrics;
  const RunMetrics on = run_scenario(neutral, policy, 42).metrics;
  expect_same_simulation(off, on);
  // The gateway observed the run without perturbing it.
  EXPECT_EQ(on.client_requests, on.generated);
  EXPECT_EQ(on.client_succeeded, on.completed);
  EXPECT_EQ(on.client_retries, 0u);
  EXPECT_EQ(off.client_requests, 0u);  // disabled layer reports nothing
}

ScenarioConfig stormy_web() {
  ScenarioConfig config = small_web();
  config.resilience.enabled = true;
  config.resilience.attempt_timeout = 0.2;
  config.resilience.request_deadline = 2.0;
  config.resilience.retry.max_attempts = 4;
  config.resilience.retry.base = 0.05;
  config.resilience.retry.cap = 0.5;
  config.resilience.budget.enabled = true;
  config.resilience.budget.ratio = 0.2;
  config.resilience.breaker.enabled = true;
  config.resilience.shed.deadline_enabled = true;
  config.resilience.shed.brownout_enabled = true;
  config.resilience.shed.brownout_utilization = 0.8;
  config.resilience.shed.brownout_fraction = 0.3;
  config.fault.outages.push_back({600.0, 900.0});
  return config;
}

TEST(ResilienceDeterminism, SameSeedSameStorm) {
  const ScenarioConfig config = stormy_web();
  const PolicySpec policy = PolicySpec::adaptive();
  const RunMetrics a = run_scenario(config, policy, 7).metrics;
  const RunMetrics b = run_scenario(config, policy, 7).metrics;
  expect_same_simulation(a, b);
  EXPECT_EQ(a.client_requests, b.client_requests);
  EXPECT_EQ(a.client_succeeded, b.client_succeeded);
  EXPECT_EQ(a.client_failed, b.client_failed);
  EXPECT_EQ(a.client_retries, b.client_retries);
  EXPECT_EQ(a.client_timeouts, b.client_timeouts);
  EXPECT_EQ(a.wasted_completions, b.wasted_completions);
  EXPECT_EQ(a.retry_budget_denied, b.retry_budget_denied);
  EXPECT_EQ(a.breaker_opens, b.breaker_opens);
  EXPECT_EQ(a.shed_deadline, b.shed_deadline);
  EXPECT_EQ(a.shed_brownout, b.shed_brownout);
  // The storm actually exercised the machinery.
  EXPECT_GT(a.client_retries, 0u);
  EXPECT_GT(a.client_timeouts, 0u);
}

}  // namespace
}  // namespace cloudprov
