#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cloud/broker.h"
#include "cloud/datacenter.h"
#include "cloud/host.h"
#include "cloud/placement.h"
#include "cloud/vm.h"
#include "workload/poisson_source.h"

namespace cloudprov {
namespace {

Request make_request(std::uint64_t id, SimTime arrival, double demand) {
  Request r;
  r.id = id;
  r.arrival_time = arrival;
  r.service_demand = demand;
  return r;
}

// ------------------------------------------------------------------- Vm

TEST(Vm, ServesFifoAndMeasuresResponseTime) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{});
  std::vector<std::pair<std::uint64_t, double>> completions;
  vm.set_completion_callback([&](Vm&, const Request& r, double response) {
    completions.emplace_back(r.id, response);
  });
  vm.submit(make_request(1, 0.0, 2.0));
  vm.submit(make_request(2, 0.0, 3.0));
  EXPECT_EQ(vm.load(), 2u);
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0].first, 1u);
  EXPECT_DOUBLE_EQ(completions[0].second, 2.0);
  EXPECT_EQ(completions[1].first, 2u);
  EXPECT_DOUBLE_EQ(completions[1].second, 5.0);  // waited 2 s, served 3 s
  EXPECT_TRUE(vm.idle());
  EXPECT_DOUBLE_EQ(vm.busy_seconds(), 5.0);
  EXPECT_EQ(vm.completed_requests(), 2u);
}

TEST(Vm, SpeedScalesServiceTime) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{1, 2.0, 2.0});  // double speed
  double response = -1.0;
  vm.set_completion_callback(
      [&](Vm&, const Request&, double r) { response = r; });
  vm.submit(make_request(1, 0.0, 3.0));
  sim.run();
  EXPECT_DOUBLE_EQ(response, 1.5);
}

TEST(Vm, SetSpeedAppliesToSubsequentRequests) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{});
  std::vector<double> responses;
  vm.set_completion_callback(
      [&](Vm&, const Request&, double r) { responses.push_back(r); });
  vm.submit(make_request(1, 0.0, 1.0));
  vm.set_speed(4.0);  // in-flight request keeps old speed
  vm.submit(make_request(2, 0.0, 1.0));
  sim.run();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_DOUBLE_EQ(responses[0], 1.0);
  EXPECT_DOUBLE_EQ(responses[1], 1.25);  // waited 1.0, served 0.25
}

TEST(Vm, BootDelayGatesAcceptance) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{}, /*boot_delay=*/5.0);
  EXPECT_EQ(vm.state(), VmState::kBooting);
  sim.run(4.0);
  EXPECT_EQ(vm.state(), VmState::kBooting);
  sim.run(5.0);
  EXPECT_EQ(vm.state(), VmState::kRunning);
}

TEST(Vm, SubmitWhileBootingIsAnError) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{}, 5.0);
  EXPECT_THROW(vm.submit(make_request(1, 0.0, 1.0)), std::logic_error);
}

TEST(Vm, DrainOnIdleInstanceFiresImmediately) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{});
  bool drained = false;
  vm.set_drained_callback([&](Vm&) { drained = true; });
  vm.drain();
  EXPECT_TRUE(drained);
  EXPECT_EQ(vm.state(), VmState::kDraining);
}

TEST(Vm, DrainWaitsForQueuedWork) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{});
  double drained_at = -1.0;
  vm.set_drained_callback([&](Vm& v) { drained_at = v.sim().now(); });
  vm.submit(make_request(1, 0.0, 1.0));
  vm.submit(make_request(2, 0.0, 1.0));
  vm.drain();
  EXPECT_THROW(vm.submit(make_request(3, 0.0, 1.0)), std::logic_error);
  sim.run();
  EXPECT_DOUBLE_EQ(drained_at, 2.0);  // after both requests finished
}

TEST(Vm, UndrainResumesAcceptance) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{});
  int drained_calls = 0;
  vm.set_drained_callback([&](Vm&) { ++drained_calls; });
  vm.submit(make_request(1, 0.0, 1.0));
  vm.drain();
  vm.undrain();
  EXPECT_EQ(vm.state(), VmState::kRunning);
  vm.submit(make_request(2, 0.0, 1.0));
  sim.run();
  EXPECT_EQ(drained_calls, 0);
  EXPECT_EQ(vm.completed_requests(), 2u);
}

TEST(Vm, DestroyRequiresIdle) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{});
  vm.submit(make_request(1, 0.0, 1.0));
  EXPECT_THROW(vm.destroy(), std::logic_error);
  sim.run();
  vm.destroy();
  EXPECT_EQ(vm.state(), VmState::kDestroyed);
  EXPECT_THROW(vm.destroy(), std::logic_error);
}

TEST(Vm, LifetimeAccounting) {
  Simulation sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  Vm vm(sim, 1, VmSpec{});
  sim.schedule_at(25.0, [&vm] { vm.destroy(); });
  sim.run();
  EXPECT_DOUBLE_EQ(vm.lifetime_seconds(100.0), 15.0);  // frozen at destruction
  ASSERT_TRUE(vm.destruction_time().has_value());
  EXPECT_DOUBLE_EQ(*vm.destruction_time(), 25.0);
}

TEST(Vm, BusySecondsIncludesInFlightWork) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{});
  vm.submit(make_request(1, 0.0, 4.0));
  sim.schedule_at(1.0, [&] { EXPECT_DOUBLE_EQ(vm.busy_seconds(), 1.0); });
  sim.run(1.0);
}

// ------------------------------------------------------------------- Host

TEST(Host, CapacityChecks) {
  Host host(0, HostSpec{8, 16.0});
  const VmSpec vm{1, 2.0, 1.0};
  EXPECT_TRUE(host.can_fit(vm));
  for (int i = 0; i < 8; ++i) host.allocate(vm);
  EXPECT_EQ(host.free_cores(), 0u);
  EXPECT_FALSE(host.can_fit(vm));
  EXPECT_EQ(host.vm_count(), 8u);
  host.release(vm);
  EXPECT_TRUE(host.can_fit(vm));
}

TEST(Host, RamCanBeTheBindingConstraint) {
  Host host(0, HostSpec{8, 4.0});
  const VmSpec vm{1, 2.0, 1.0};
  host.allocate(vm);
  host.allocate(vm);
  EXPECT_EQ(host.free_cores(), 6u);
  EXPECT_FALSE(host.can_fit(vm));  // out of RAM, not cores
}

TEST(Host, AllocateWithoutCapacityThrows) {
  Host host(0, HostSpec{1, 2.0});
  const VmSpec vm{1, 2.0, 1.0};
  host.allocate(vm);
  EXPECT_THROW(host.allocate(vm), std::logic_error);
  host.release(vm);
  EXPECT_THROW(host.release(vm), std::logic_error);
}

// ------------------------------------------------------------------- Placement

std::vector<std::unique_ptr<Host>> make_hosts(std::size_t n) {
  std::vector<std::unique_ptr<Host>> hosts;
  for (std::size_t i = 0; i < n; ++i) {
    hosts.push_back(std::make_unique<Host>(i, HostSpec{}));
  }
  return hosts;
}

TEST(Placement, LeastLoadedSpreadsVms) {
  auto hosts = make_hosts(3);
  LeastLoadedPlacement policy;
  const VmSpec vm{};
  for (int i = 0; i < 6; ++i) {
    Host* host = policy.select(hosts, vm);
    ASSERT_NE(host, nullptr);
    host->allocate(vm);
  }
  for (const auto& host : hosts) EXPECT_EQ(host->vm_count(), 2u);
}

TEST(Placement, FirstFitPacksDensely) {
  auto hosts = make_hosts(3);
  FirstFitPlacement policy;
  const VmSpec vm{};
  for (int i = 0; i < 8; ++i) {
    Host* host = policy.select(hosts, vm);
    ASSERT_NE(host, nullptr);
    host->allocate(vm);
  }
  EXPECT_EQ(hosts[0]->vm_count(), 8u);
  EXPECT_EQ(hosts[1]->vm_count(), 0u);
  Host* ninth = policy.select(hosts, vm);
  EXPECT_EQ(ninth, hosts[1].get());
}

TEST(Placement, RandomOnlyPicksFittingHosts) {
  auto hosts = make_hosts(3);
  const VmSpec vm{};
  // Fill host 0 completely.
  for (int i = 0; i < 8; ++i) hosts[0]->allocate(vm);
  RandomPlacement policy{Rng(5)};
  for (int i = 0; i < 50; ++i) {
    Host* host = policy.select(hosts, vm);
    ASSERT_NE(host, nullptr);
    EXPECT_NE(host, hosts[0].get());
  }
}

TEST(Placement, AllPoliciesReturnNullWhenFull) {
  auto hosts = make_hosts(1);
  const VmSpec vm{};
  for (int i = 0; i < 8; ++i) hosts[0]->allocate(vm);
  LeastLoadedPlacement least;
  FirstFitPlacement first;
  RandomPlacement random{Rng(1)};
  EXPECT_EQ(least.select(hosts, vm), nullptr);
  EXPECT_EQ(first.select(hosts, vm), nullptr);
  EXPECT_EQ(random.select(hosts, vm), nullptr);
}

// ------------------------------------------------------------------- Datacenter

TEST(Datacenter, CreateDestroyAccounting) {
  Simulation sim;
  DatacenterConfig config;
  config.host_count = 2;
  Datacenter dc(sim, config, std::make_unique<LeastLoadedPlacement>());
  EXPECT_EQ(dc.remaining_capacity(VmSpec{}), 16u);

  Vm* a = dc.create_vm(VmSpec{});
  Vm* b = dc.create_vm(VmSpec{});
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(dc.live_vm_count(), 2u);
  EXPECT_EQ(dc.remaining_capacity(VmSpec{}), 14u);

  sim.schedule_at(3600.0, [&] { dc.destroy_vm(*a); });
  sim.run(7200.0);
  EXPECT_EQ(dc.live_vm_count(), 1u);
  // a lived 1 h, b is still alive at 2 h => 3 VM hours total.
  EXPECT_NEAR(dc.vm_hours(), 3.0, 1e-9);
  EXPECT_EQ(dc.total_vms_created(), 2u);
}

TEST(Datacenter, UtilizationIsBusyOverLifetime) {
  Simulation sim;
  DatacenterConfig config;
  config.host_count = 1;
  Datacenter dc(sim, config, std::make_unique<LeastLoadedPlacement>());
  Vm* vm = dc.create_vm(VmSpec{});
  ASSERT_NE(vm, nullptr);
  vm->submit(make_request(1, 0.0, 1800.0));  // busy half of the first hour
  sim.run(3600.0);
  EXPECT_NEAR(dc.utilization(), 0.5, 1e-9);
}

TEST(Datacenter, ReturnsNullWhenFull) {
  Simulation sim;
  DatacenterConfig config;
  config.host_count = 1;
  Datacenter dc(sim, config, std::make_unique<FirstFitPlacement>());
  for (int i = 0; i < 8; ++i) ASSERT_NE(dc.create_vm(VmSpec{}), nullptr);
  EXPECT_EQ(dc.create_vm(VmSpec{}), nullptr);
  EXPECT_EQ(dc.live_vm_count(), 8u);
}

TEST(Datacenter, DestroyFreesHostCapacity) {
  Simulation sim;
  DatacenterConfig config;
  config.host_count = 1;
  Datacenter dc(sim, config, std::make_unique<FirstFitPlacement>());
  std::vector<Vm*> vms;
  for (int i = 0; i < 8; ++i) vms.push_back(dc.create_vm(VmSpec{}));
  dc.destroy_vm(*vms[3]);
  EXPECT_NE(dc.create_vm(VmSpec{}), nullptr);
}

TEST(Datacenter, BootDelayPropagatesToVms) {
  Simulation sim;
  DatacenterConfig config;
  config.host_count = 1;
  config.vm_boot_delay = 30.0;
  Datacenter dc(sim, config, std::make_unique<LeastLoadedPlacement>());
  Vm* vm = dc.create_vm(VmSpec{});
  ASSERT_NE(vm, nullptr);
  EXPECT_EQ(vm->state(), VmState::kBooting);
  sim.run(31.0);
  EXPECT_EQ(vm->state(), VmState::kRunning);
}

// ------------------------------------------------------------------- Broker

class CollectingSink : public RequestSink {
 public:
  void on_request(const Request& request) override { requests.push_back(request); }
  std::vector<Request> requests;
};

TEST(Broker, DeliversArrivalsAtTheirTimes) {
  Simulation sim;
  PoissonSource source(2.0, std::make_shared<DeterministicDistribution>(0.5),
                       0.0, 100.0);
  CollectingSink sink;
  Broker broker(sim, source, sink, Rng(9));
  broker.start();
  sim.run();
  EXPECT_GT(sink.requests.size(), 100u);
  EXPECT_EQ(broker.generated(), sink.requests.size());
  for (std::size_t i = 0; i < sink.requests.size(); ++i) {
    EXPECT_EQ(sink.requests[i].id, i + 1);
    if (i > 0) {
      EXPECT_GE(sink.requests[i].arrival_time, sink.requests[i - 1].arrival_time);
    }
  }
}

TEST(Broker, OnlyOneArrivalPendingAtATime) {
  // The broker must not pre-materialize the whole workload into the queue.
  Simulation sim;
  PoissonSource source(100.0, std::make_shared<DeterministicDistribution>(0.5),
                       0.0, 1000.0);
  CollectingSink sink;
  Broker broker(sim, source, sink, Rng(10));
  broker.start();
  for (int i = 0; i < 50; ++i) sim.step();
  EXPECT_LE(sim.queue().size(), 1u);
}

TEST(Broker, RateSeriesApproximatesSourceRate) {
  Simulation sim;
  PoissonSource source(20.0, std::make_shared<DeterministicDistribution>(0.5),
                       0.0, 500.0);
  CollectingSink sink;
  Broker broker(sim, source, sink, Rng(11));
  broker.record_rate_series(10.0);
  broker.start();
  sim.run();
  const auto& points = broker.rate_series().points();
  ASSERT_GT(points.size(), 40u);
  double sum = 0.0;
  for (const auto& p : points) sum += p.value;
  EXPECT_NEAR(sum / static_cast<double>(points.size()), 20.0, 1.0);
}

}  // namespace
}  // namespace cloudprov
