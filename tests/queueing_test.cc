#include <gtest/gtest.h>

#include <cmath>

#include "queueing/birth_death.h"
#include "queueing/erlang.h"
#include "queueing/instance_pool_model.h"
#include "queueing/mm1.h"
#include "queueing/mm1k.h"
#include "queueing/mmc.h"
#include "queueing/mminf.h"

namespace cloudprov::queueing {
namespace {

constexpr double kTol = 1e-9;

TEST(Mm1, TextbookValues) {
  // lambda = 2, mu = 5: rho = 0.4, L = 2/3, W = 1/3.
  const QueueMetrics m = mm1(2.0, 5.0);
  EXPECT_NEAR(m.server_utilization, 0.4, kTol);
  EXPECT_NEAR(m.mean_in_system, 2.0 / 3.0, kTol);
  EXPECT_NEAR(m.mean_response_time, 1.0 / 3.0, kTol);
  EXPECT_NEAR(m.mean_waiting_time, 1.0 / 3.0 - 0.2, kTol);
  EXPECT_NEAR(m.mean_in_queue, 0.4 * 0.4 / 0.6, kTol);
  EXPECT_EQ(m.blocking_probability, 0.0);
  EXPECT_NEAR(m.probability_empty, 0.6, kTol);
}

TEST(Mm1, LittlesLawHolds) {
  for (double rho : {0.1, 0.5, 0.9, 0.99}) {
    const QueueMetrics m = mm1(rho * 3.0, 3.0);
    EXPECT_NEAR(m.mean_in_system, m.throughput * m.mean_response_time, 1e-9)
        << rho;
  }
}

TEST(Mm1, UnstableThrows) {
  EXPECT_THROW(mm1(5.0, 5.0), std::invalid_argument);
  EXPECT_THROW(mm1(6.0, 5.0), std::invalid_argument);
}

TEST(Mm1k, DistributionIsGeometricTruncated) {
  const double lambda = 4.0;
  const double mu = 5.0;
  const std::size_t k = 3;
  const auto p = mm1k_distribution(lambda, mu, k);
  ASSERT_EQ(p.size(), k + 1);
  double total = 0.0;
  for (double x : p) total += x;
  EXPECT_NEAR(total, 1.0, kTol);
  const double rho = lambda / mu;
  for (std::size_t n = 1; n <= k; ++n) {
    EXPECT_NEAR(p[n] / p[n - 1], rho, kTol);
  }
}

TEST(Mm1k, PaperOperatingPoint) {
  // The web scenario's per-instance model: Tm = 105 ms, k = 2,
  // lambda_si ~ 7.84 req/s -> rho ~ 0.823.
  const double tm = 0.105;
  const QueueMetrics m = mm1k(1200.0 / 153.0, 1.0 / tm, 2);
  EXPECT_NEAR(m.offered_load, 0.8235, 0.001);
  // Response time of accepted requests can never exceed k * Tm <= Ts.
  EXPECT_LE(m.mean_response_time, 2.0 * tm + 1e-9);
  EXPECT_GT(m.blocking_probability, 0.2);
  EXPECT_LT(m.blocking_probability, 0.35);
}

TEST(Mm1k, RhoEqualsOneIsUniform) {
  const auto p = mm1k_distribution(3.0, 3.0, 4);
  for (double x : p) EXPECT_NEAR(x, 0.2, kTol);
  const QueueMetrics m = mm1k(3.0, 3.0, 4);
  EXPECT_NEAR(m.mean_in_system, 2.0, kTol);  // K/2
  EXPECT_NEAR(m.blocking_probability, 0.2, kTol);
}

TEST(Mm1k, NearUnityRhoIsContinuous) {
  // Values straddling the rho == 1 special case must agree closely.
  const QueueMetrics below = mm1k(2.9999999, 3.0, 5);
  const QueueMetrics at = mm1k(3.0, 3.0, 5);
  const QueueMetrics above = mm1k(3.0000001, 3.0, 5);
  EXPECT_NEAR(below.mean_in_system, at.mean_in_system, 1e-4);
  EXPECT_NEAR(above.mean_in_system, at.mean_in_system, 1e-4);
}

TEST(Mm1k, CapacityOneIsErlangB) {
  // M/M/1/1 blocking = a / (1 + a).
  for (double a : {0.1, 0.5, 1.0, 2.0, 10.0}) {
    const QueueMetrics m = mm1k(a, 1.0, 1);
    EXPECT_NEAR(m.blocking_probability, a / (1.0 + a), kTol) << a;
    EXPECT_NEAR(m.blocking_probability, erlang_b(a, 1), kTol) << a;
  }
}

TEST(Mm1k, ConvergesToMm1ForLargeK) {
  const QueueMetrics bounded = mm1k(4.0, 5.0, 500);
  const QueueMetrics unbounded = mm1(4.0, 5.0);
  EXPECT_NEAR(bounded.mean_in_system, unbounded.mean_in_system, 1e-6);
  EXPECT_NEAR(bounded.mean_response_time, unbounded.mean_response_time, 1e-6);
  EXPECT_LT(bounded.blocking_probability, 1e-12);
}

TEST(Mm1k, OverloadIsWellDefined) {
  // rho = 2: the finite chain still has a stationary distribution, and
  // blocking must absorb the excess: throughput <= mu.
  const QueueMetrics m = mm1k(10.0, 5.0, 2);
  EXPECT_GT(m.blocking_probability, 0.5);
  EXPECT_LE(m.throughput, 5.0 + kTol);
}

class Mm1kVsBirthDeath
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(Mm1kVsBirthDeath, ClosedFormMatchesGenericSolver) {
  const auto [rho, k] = GetParam();
  const double mu = 2.0;
  const double lambda = rho * mu;
  const QueueMetrics closed = mm1k(lambda, mu, k);
  const QueueMetrics general = birth_death_queue_metrics(lambda, mu, 1, k);
  EXPECT_NEAR(closed.blocking_probability, general.blocking_probability, 1e-9);
  EXPECT_NEAR(closed.mean_in_system, general.mean_in_system, 1e-9);
  EXPECT_NEAR(closed.mean_response_time, general.mean_response_time, 1e-9);
  EXPECT_NEAR(closed.server_utilization, general.server_utilization, 1e-9);
  EXPECT_NEAR(closed.probability_empty, general.probability_empty, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RhoAndCapacitySweep, Mm1kVsBirthDeath,
    ::testing::Combine(::testing::Values(0.05, 0.3, 0.8, 0.95, 1.0, 1.2, 3.0),
                       ::testing::Values<std::size_t>(1, 2, 3, 5, 10, 50)));

TEST(ErlangB, KnownValues) {
  // Classic traffic-table values.
  EXPECT_NEAR(erlang_b(1.0, 1), 0.5, kTol);
  EXPECT_NEAR(erlang_b(2.0, 2), 0.4, kTol);
  EXPECT_NEAR(erlang_b(10.0, 10), 0.2146, 5e-4);
  EXPECT_NEAR(erlang_b(0.0, 5), 0.0, kTol);
}

TEST(ErlangB, MonotoneInServersAndLoad) {
  for (std::size_t c = 1; c < 30; ++c) {
    EXPECT_LT(erlang_b(8.0, c + 1), erlang_b(8.0, c));
  }
  for (double a = 1.0; a < 20.0; a += 1.0) {
    EXPECT_GT(erlang_b(a + 1.0, 10), erlang_b(a, 10));
  }
}

TEST(ErlangC, KnownValuesAndLimits) {
  // a = 2 erlangs on 3 servers: C ~ 0.2222? Compute: B(2,3)=0.2105,
  // C = 3*0.2105 / (3 - 2*(1-0.2105)) = 0.6316/1.4211 = 0.4444.
  EXPECT_NEAR(erlang_c(2.0, 3), 0.44444, 5e-4);
  EXPECT_EQ(erlang_c(5.0, 3), 1.0);    // overloaded => certain wait
  EXPECT_NEAR(erlang_c(0.0, 3), 0.0, kTol);
  EXPECT_GE(erlang_c(2.0, 3), erlang_b(2.0, 3));  // C >= B always
}

TEST(Mmc, AgainstBirthDeathLargeCapacity) {
  const QueueMetrics closed = mmc(7.0, 1.0, 10);
  const QueueMetrics general = birth_death_queue_metrics(7.0, 1.0, 10, 2000);
  EXPECT_NEAR(closed.mean_in_queue, general.mean_in_queue, 1e-5);
  EXPECT_NEAR(closed.mean_response_time, general.mean_response_time, 1e-6);
  EXPECT_NEAR(closed.probability_empty, general.probability_empty, 1e-9);
}

TEST(Mmc, SingleServerReducesToMm1) {
  const QueueMetrics multi = mmc(2.0, 5.0, 1);
  const QueueMetrics single = mm1(2.0, 5.0);
  EXPECT_NEAR(multi.mean_response_time, single.mean_response_time, kTol);
  EXPECT_NEAR(multi.mean_in_system, single.mean_in_system, kTol);
}

TEST(Mmc, UnstableThrows) { EXPECT_THROW(mmc(10.0, 1.0, 10), std::invalid_argument); }

TEST(Mmck, LossSystemMatchesErlangB) {
  // M/M/c/c: blocking equals Erlang B.
  for (std::size_t c : {1u, 2u, 5u, 20u}) {
    const QueueMetrics m = mmck(6.0, 1.0, c, c);
    EXPECT_NEAR(m.blocking_probability, erlang_b(6.0, c), 1e-9) << c;
  }
}

TEST(Mmck, WaitingRoomReducesBlocking) {
  const QueueMetrics loss = mmck(6.0, 1.0, 5, 5);
  const QueueMetrics buffered = mmck(6.0, 1.0, 5, 15);
  EXPECT_LT(buffered.blocking_probability, loss.blocking_probability);
  EXPECT_GT(buffered.mean_response_time, loss.mean_response_time);
}

TEST(Mminf, PureDelayStation) {
  const QueueMetrics m = mminf(8.0, 2.0);
  EXPECT_NEAR(m.mean_in_system, 4.0, kTol);
  EXPECT_NEAR(m.mean_response_time, 0.5, kTol);
  EXPECT_EQ(m.mean_waiting_time, 0.0);
  EXPECT_EQ(m.blocking_probability, 0.0);
  EXPECT_NEAR(m.probability_empty, std::exp(-4.0), kTol);
}

TEST(Mminf, OccupancyIsPoisson) {
  // P(N = n) sums to ~1 and has the Poisson mean.
  const double lambda = 6.0;
  const double mu = 2.0;
  double total = 0.0;
  double mean = 0.0;
  for (std::size_t n = 0; n < 60; ++n) {
    const double p = mminf_occupancy_pmf(lambda, mu, n);
    total += p;
    mean += static_cast<double>(n) * p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_NEAR(mean, 3.0, 1e-9);
}

TEST(BirthDeath, HandlesHugeStateSpacesWithoutOverflow) {
  // rho > 1 over 20000 states would overflow naive products.
  const QueueMetrics m = birth_death_queue_metrics(30.0, 1.0, 10, 20000);
  EXPECT_GT(m.blocking_probability, 0.0);
  EXPECT_LE(m.blocking_probability, 1.0);
  EXPECT_NEAR(m.server_utilization, 1.0, 1e-6);  // saturated
}

TEST(BirthDeath, StableChainWithHugeCapacityUnderflowsGracefully) {
  // Regression: a = 80 erlangs on 100 servers with 20000 states makes the
  // tail terms underflow to zero; a buggy upward rescale used to overflow
  // the dominant terms into inf and fail normalization.
  const QueueMetrics m = birth_death_queue_metrics(80.0, 1.0, 100, 20000);
  EXPECT_NEAR(m.blocking_probability, 0.0, 1e-12);
  EXPECT_NEAR(m.server_utilization, 0.8, 1e-6);
  // Matches the unbounded M/M/c model.
  const QueueMetrics open = mmc(80.0, 1.0, 100);
  EXPECT_NEAR(m.mean_in_queue, open.mean_in_queue, 1e-6);
}

TEST(BirthDeath, ValidatesInput) {
  EXPECT_THROW(birth_death_stationary({1.0}, {0.0}), std::invalid_argument);
  EXPECT_THROW(birth_death_stationary({1.0, 1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(birth_death_queue_metrics(1.0, 1.0, 5, 3), std::invalid_argument);
}

TEST(InstancePool, EvenSplitMatchesSingleInstanceModel) {
  InstancePoolModel model;
  model.total_arrival_rate = 40.0;
  model.service_rate = 10.0;
  model.instances = 8;
  model.queue_capacity = 2;
  const InstancePoolMetrics pool = solve_instance_pool(model);
  const QueueMetrics single = mm1k(5.0, 10.0, 2);
  EXPECT_NEAR(pool.rejection_probability, single.blocking_probability, kTol);
  EXPECT_NEAR(pool.mean_response_time, single.mean_response_time, kTol);
  EXPECT_NEAR(pool.offered_per_instance, 0.5, kTol);
  EXPECT_NEAR(pool.total_throughput, 8.0 * single.throughput, kTol);
  EXPECT_NEAR(pool.mean_in_system_total, 8.0 * single.mean_in_system, kTol);
}

TEST(InstancePool, MoreInstancesReduceRejection) {
  InstancePoolModel model;
  model.total_arrival_rate = 100.0;
  model.service_rate = 10.0;
  model.queue_capacity = 2;
  double previous = 1.0;
  for (std::size_t m = 5; m <= 40; m += 5) {
    model.instances = m;
    const double rejection = solve_instance_pool(model).rejection_probability;
    EXPECT_LT(rejection, previous) << m;
    previous = rejection;
  }
}

TEST(InstancePool, ResponseTimeBoundedByKServiceTimes) {
  // Structural guarantee behind Equation 1: W <= k / mu for any load.
  for (double lambda : {1.0, 10.0, 100.0, 1000.0}) {
    InstancePoolModel model;
    model.total_arrival_rate = lambda;
    model.service_rate = 10.0;
    model.instances = 4;
    model.queue_capacity = 3;
    const InstancePoolMetrics pool = solve_instance_pool(model);
    EXPECT_LE(pool.mean_response_time, 3.0 / 10.0 + 1e-12) << lambda;
  }
}

}  // namespace
}  // namespace cloudprov::queueing
