// Coverage for auxiliary behaviors not exercised elsewhere: time helpers,
// event-queue bookkeeping, three-tier chains, bursty-workload provisioning,
// and trace-driven determinism.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "cloud/broker.h"
#include "core/adaptive_policy.h"
#include "core/multitier.h"
#include "core/vertical_policy.h"
#include "predict/ewma.h"
#include "predict/hybrid.h"
#include "predict/moving_average.h"
#include "predict/periodic_profile.h"
#include "util/units.h"
#include "workload/bot_workload.h"
#include "workload/mmpp_source.h"
#include "workload/poisson_source.h"
#include "workload/spike_overlay.h"
#include "workload/trace.h"

namespace cloudprov {
namespace {

TEST(Units, SecondsIntoDayAndDayIndex) {
  EXPECT_EQ(seconds_into_day(0.0), 0.0);
  EXPECT_EQ(seconds_into_day(3600.0), 3600.0);
  EXPECT_EQ(seconds_into_day(86400.0), 0.0);
  EXPECT_EQ(seconds_into_day(2.0 * 86400.0 + 100.0), 100.0);
  EXPECT_EQ(day_index(0.0), 0);
  EXPECT_EQ(day_index(86399.0), 0);
  EXPECT_EQ(day_index(86400.0), 1);
  EXPECT_EQ(day_index(6.5 * 86400.0), 6);
}

TEST(Units, DurationConstantsAreConsistent) {
  EXPECT_EQ(duration::kMinute, 60.0 * duration::kSecond);
  EXPECT_EQ(duration::kHour, 60.0 * duration::kMinute);
  EXPECT_EQ(duration::kDay, 24.0 * duration::kHour);
  EXPECT_EQ(duration::kWeek, 7.0 * duration::kDay);
}

TEST(EventQueueAux, SizeAndPushedCountAndClear) {
  EventQueue queue;
  EXPECT_EQ(queue.size(), 0u);
  const EventId a = queue.push(1.0, [] {});
  queue.push(2.0, [] {});
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pushed_count(), 2u);
  queue.cancel(a);
  EXPECT_EQ(queue.size(), 1u);  // live events only
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.pushed_count(), 2u);  // history preserved
}

TEST(ThreeTierChain, EndToEndAcrossThreeTiers) {
  Simulation sim;
  DatacenterConfig dc;
  dc.host_count = 8;
  Datacenter datacenter(sim, dc, std::make_unique<LeastLoadedPlacement>());
  MultiTierConfig config;
  config.qos.max_response_time = 1.2;
  for (const char* name : {"web", "app", "db"}) {
    config.tiers.push_back(TierConfig{
        name, std::make_shared<DeterministicDistribution>(0.1), 0.1, VmSpec{}});
  }
  MultiTierApplication app(sim, datacenter, config, Rng(1));
  for (std::size_t i = 0; i < 3; ++i) app.tier(i).scale_to(1);

  Request r;
  r.id = 1;
  r.service_demand = 0.1;
  app.on_request(r);
  sim.run();
  EXPECT_EQ(app.completed(), 1u);
  EXPECT_NEAR(app.end_to_end_response().mean(), 0.3, 1e-12);
  // Equal estimates: the budget splits into thirds.
  EXPECT_NEAR(app.tier_budget(0), 0.4, 1e-12);
  EXPECT_NEAR(app.tier_budget(2), 0.4, 1e-12);
}

TEST(BurstyProvisioning, HybridAbsorbsMmppBursts) {
  // MMPP ON/OFF load with 20x rate swings, provisioned adaptively with the
  // hybrid predictor (there is no valid profile for an MMPP): rejection must
  // stay moderate and the pool must swing with the bursts.
  Simulation sim;
  DatacenterConfig dc;
  dc.host_count = 16;
  Datacenter datacenter(sim, dc, std::make_unique<LeastLoadedPlacement>());
  QosTargets qos;
  qos.max_response_time = 0.25;
  ProvisionerConfig prov_config;
  prov_config.initial_service_time_estimate = 0.105;
  ApplicationProvisioner provisioner(sim, datacenter, qos, prov_config);

  MmppConfig mmpp;
  mmpp.states = {MmppState{100.0, 600.0}, MmppState{5.0, 600.0}};
  mmpp.service_demand = std::make_shared<ScaledUniformDistribution>(0.1, 0.1);
  mmpp.horizon = 20000.0;
  MmppSource source(mmpp);
  Broker broker(sim, source, provisioner, Rng(5));

  AnalyzerConfig analyzer;
  analyzer.analysis_interval = 30.0;
  analyzer.lead_time = 0.0;  // nothing to look ahead to
  ModelerConfig modeler;
  modeler.max_vms = 100;
  auto hybrid = std::make_shared<HybridPredictor>(
      std::make_shared<EwmaPredictor>(0.5, 0.3),
      std::make_shared<MovingAveragePredictor>(
          5, MovingAveragePredictor::Mode::kMax, 0.1));
  AdaptivePolicy policy(sim, hybrid, modeler, analyzer);
  policy.attach(provisioner);
  broker.start();
  sim.run(mmpp.horizon);

  TimeWeightedValue history = provisioner.instance_history();
  history.advance(sim.now());
  EXPECT_GE(history.max(), 10.0);   // sized up for ON bursts
  EXPECT_LE(history.min(), 4.0);    // shrank in OFF periods
  EXPECT_LT(provisioner.rejection_rate(), 0.08);  // burst onsets only
  EXPECT_EQ(provisioner.qos_violations(), 0u);
}

TEST(TraceDriven, PoliciesComparableOnIdenticalArrivals) {
  // Record one BoT day, then replay the identical trace under two static
  // sizes: every run sees the same arrivals, so the comparison is paired.
  BotWorkload workload{};
  Rng gen(9);
  const WorkloadTrace trace = WorkloadTrace::record(workload, gen);
  ASSERT_GT(trace.arrivals.size(), 5000u);

  auto run = [&](std::size_t instances) {
    Simulation sim;
    DatacenterConfig dc;
    dc.host_count = 32;
    Datacenter datacenter(sim, dc, std::make_unique<LeastLoadedPlacement>());
    QosTargets qos;
    qos.max_response_time = 700.0;
    ProvisionerConfig config;
    config.initial_service_time_estimate = 315.0;
    ApplicationProvisioner provisioner(sim, datacenter, qos, config);
    provisioner.scale_to(instances);
    TraceSource source(trace);
    Broker broker(sim, source, provisioner, Rng(1));
    broker.start();
    sim.run();
    return std::pair{provisioner.total_arrivals(), provisioner.rejected()};
  };

  const auto [offered_small, rejected_small] = run(30);
  const auto [offered_large, rejected_large] = run(90);
  EXPECT_EQ(offered_small, offered_large);  // identical arrival sequence
  EXPECT_EQ(offered_small, trace.arrivals.size());
  EXPECT_GT(rejected_small, 10u * std::max<std::uint64_t>(rejected_large, 1));
}

TEST(SpikeOverlay, BaseExhaustionStillDrainsSpike) {
  // Base ends before the spike window: spike arrivals must still be emitted.
  auto base = std::make_unique<PoissonSource>(
      5.0, std::make_shared<DeterministicDistribution>(0.1), 0.0, 10.0);
  SpikeConfig spike;
  spike.start = 50.0;
  spike.end = 60.0;
  spike.extra_rate = 10.0;
  spike.service_demand = std::make_shared<DeterministicDistribution>(0.1);
  SpikeOverlaySource source(std::move(base), spike);
  Rng rng(11);
  std::size_t in_spike = 0;
  while (auto a = source.next(rng)) {
    if (a->time >= 50.0 && a->time < 60.0) ++in_spike;
  }
  EXPECT_NEAR(static_cast<double>(in_spike), 100.0, 40.0);
}

TEST(VerticalConfig, QosFloorAboveMaxSpeedThrows) {
  Simulation sim;
  DatacenterConfig dc;
  dc.host_count = 2;
  Datacenter datacenter(sim, dc, std::make_unique<LeastLoadedPlacement>());
  QosTargets qos;
  qos.max_response_time = 0.1;  // needs speed >= 1.0 * (1+margin) for 0.1 s work
  ProvisionerConfig prov_config;
  prov_config.initial_service_time_estimate = 0.1;
  ApplicationProvisioner provisioner(sim, datacenter, qos, prov_config);
  VerticalScalingConfig config;
  config.instances = 1;
  config.base_service_time = 0.1;
  config.max_speed = 1.0;  // below the QoS floor 1.15
  VerticalScalingPolicy policy(
      sim, std::make_shared<EwmaPredictor>(0.5, 0.0), config, AnalyzerConfig{});
  EXPECT_THROW(policy.attach(provisioner), std::invalid_argument);
}

}  // namespace
}  // namespace cloudprov
