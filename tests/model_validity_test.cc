// Modeler-validity map: across a grid of (per-instance load, pool size,
// queue bound), the Figure-2 analytic model must be *conservative* relative
// to the simulated system — its blocking estimate bounds the simulated
// rejection from above (round-robin splitting + global admission beat the
// independent-Poisson-split assumption), while its response-time estimate
// stays within the k * Tm structural bound both share. This is the property
// that makes Algorithm 1's sizing safe.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "cloud/broker.h"
#include "core/application_provisioner.h"
#include "queueing/instance_pool_model.h"
#include "workload/poisson_source.h"

namespace cloudprov {
namespace {

class ModelValidityTest
    : public ::testing::TestWithParam<std::tuple<double, std::size_t, std::size_t>> {
};

TEST_P(ModelValidityTest, ModelBlockingBoundsSimulatedRejection) {
  const auto [rho, instances, bound] = GetParam();
  const double mu = 10.0;
  const double lambda = rho * mu * static_cast<double>(instances);

  Simulation sim;
  DatacenterConfig dc;
  dc.host_count = instances / 8 + 1;
  Datacenter datacenter(sim, dc, std::make_unique<LeastLoadedPlacement>());
  QosTargets qos;
  qos.max_response_time = 1e9;
  ProvisionerConfig config;
  config.fixed_queue_bound = bound;
  config.initial_service_time_estimate = 1.0 / mu;
  ApplicationProvisioner provisioner(sim, datacenter, qos, config);
  provisioner.scale_to(instances);

  PoissonSource source(lambda, std::make_shared<ExponentialDistribution>(mu),
                       0.0, 150000.0 / lambda);
  Broker broker(sim, source, provisioner, Rng(instances * 100 + bound));
  broker.start();
  sim.run();

  queueing::InstancePoolModel model;
  model.total_arrival_rate = lambda;
  model.service_rate = mu;
  model.instances = instances;
  model.queue_capacity = bound;
  const auto predicted = queueing::solve_instance_pool(model);

  // Conservatism: the model never under-predicts rejection (allowing
  // Monte-Carlo noise on the simulated side).
  EXPECT_GE(predicted.rejection_probability + 0.01,
            provisioner.rejection_rate())
      << "rho=" << rho << " m=" << instances << " k=" << bound;

  // Both sides respect the structural *mean*-response bound of Equation 1
  // (k services of mean length; with exponential service individual
  // requests are unbounded, so the per-request max is not — that hard
  // guarantee needs bounded demands, as in the paper's uniform scenarios).
  const double structural_bound = static_cast<double>(bound) / mu;
  EXPECT_LE(predicted.mean_response_time, structural_bound + 1e-9);
  EXPECT_LE(provisioner.response_time_stats().mean(),
            1.05 * structural_bound);

  // For a single instance the split model is exact, so the two must agree.
  if (instances == 1) {
    EXPECT_NEAR(provisioner.rejection_rate(), predicted.rejection_probability,
                0.015 + 0.05 * predicted.rejection_probability);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LoadPoolBoundGrid, ModelValidityTest,
    ::testing::Combine(::testing::Values(0.5, 0.85, 1.1),
                       ::testing::Values<std::size_t>(1, 4, 16),
                       ::testing::Values<std::size_t>(1, 2, 4)));

}  // namespace
}  // namespace cloudprov
