// Cross-model queueing-law property sweeps: invariants that every model in
// the library must satisfy regardless of parameters (Little's law, PASTA
// consistency, monotonicity in load / capacity / servers).
#include <gtest/gtest.h>

#include <tuple>

#include "queueing/birth_death.h"
#include "queueing/mg1.h"
#include "queueing/mm1.h"
#include "queueing/mm1k.h"
#include "queueing/mmc.h"
#include "queueing/mminf.h"

namespace cloudprov::queueing {
namespace {

class LittlesLawTest
    : public ::testing::TestWithParam<std::tuple<double, std::size_t, std::size_t>> {
};

TEST_P(LittlesLawTest, LEqualsEffectiveLambdaTimesW) {
  const auto [rho, servers, capacity_factor] = GetParam();
  const double mu = 5.0;
  const double lambda = rho * mu * static_cast<double>(servers);
  const std::size_t capacity = servers * capacity_factor;
  const QueueMetrics m = mmck(lambda, mu, servers, capacity);
  EXPECT_NEAR(m.mean_in_system, m.throughput * m.mean_response_time, 1e-9);
  EXPECT_NEAR(m.mean_in_queue, m.throughput * m.mean_waiting_time, 1e-9);
  // Consistency: W = Wq + 1/mu for accepted customers.
  EXPECT_NEAR(m.mean_response_time, m.mean_waiting_time + 1.0 / mu, 1e-9);
  // Utilization equals carried load per server.
  EXPECT_NEAR(m.server_utilization,
              m.throughput / (mu * static_cast<double>(servers)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    LoadServerCapacityGrid, LittlesLawTest,
    ::testing::Combine(::testing::Values(0.3, 0.8, 1.0, 1.4),
                       ::testing::Values<std::size_t>(1, 3, 10),
                       ::testing::Values<std::size_t>(1, 2, 8)));

TEST(Monotonicity, BlockingDecreasesWithCapacity) {
  double previous = 1.0;
  for (std::size_t k = 1; k <= 20; ++k) {
    const double blocking = mm1k(8.0, 10.0, k).blocking_probability;
    EXPECT_LT(blocking, previous) << k;
    previous = blocking;
  }
}

TEST(Monotonicity, ResponseGrowsWithLoad) {
  double previous = 0.0;
  for (double rho = 0.05; rho < 2.0; rho += 0.05) {
    const double response = mm1k(rho * 10.0, 10.0, 5).mean_response_time;
    EXPECT_GE(response, previous) << rho;
    previous = response;
  }
}

TEST(Monotonicity, MoreServersReduceWaiting) {
  double previous = 1e9;
  for (std::size_t c = 9; c <= 30; c += 3) {
    const double waiting = mmc(80.0, 10.0, c).mean_waiting_time;
    EXPECT_LT(waiting, previous) << c;
    previous = waiting;
  }
}

TEST(Monotonicity, Mg1WaitingGrowsWithVariability) {
  double previous = -1.0;
  for (double scv : {0.0, 0.25, 1.0, 4.0, 16.0}) {
    const double waiting = mg1(8.0, 0.1, scv).mean_waiting_time;
    EXPECT_GT(waiting, previous) << scv;
    previous = waiting;
  }
}

TEST(Consistency, ScalingInvariance) {
  // Rescaling time units (lambda, mu) -> (a*lambda, a*mu) scales times by
  // 1/a and leaves probabilities and occupancies unchanged.
  const QueueMetrics base = mm1k(8.0, 10.0, 3);
  const QueueMetrics scaled = mm1k(80.0, 100.0, 3);
  EXPECT_NEAR(scaled.blocking_probability, base.blocking_probability, 1e-12);
  EXPECT_NEAR(scaled.mean_in_system, base.mean_in_system, 1e-12);
  EXPECT_NEAR(scaled.mean_response_time, base.mean_response_time / 10.0, 1e-12);
}

TEST(Consistency, DistributionMatchesMetrics) {
  // Metrics derived independently from the stationary distribution must
  // agree with the closed-form summary.
  const double lambda = 7.0;
  const double mu = 10.0;
  const std::size_t k = 4;
  const auto p = mm1k_distribution(lambda, mu, k);
  const QueueMetrics m = mm1k(lambda, mu, k);
  double mean = 0.0;
  for (std::size_t n = 0; n <= k; ++n) mean += static_cast<double>(n) * p[n];
  EXPECT_NEAR(mean, m.mean_in_system, 1e-12);
  EXPECT_NEAR(p[k], m.blocking_probability, 1e-12);
  EXPECT_NEAR(p[0], m.probability_empty, 1e-12);
}

TEST(Consistency, MminfIsTheLimitOfMmc) {
  // M/M/c -> M/M/inf as c grows: waiting vanishes, L -> a.
  const double lambda = 12.0;
  const double mu = 2.0;
  const QueueMetrics many = mmc(lambda, mu, 60);
  const QueueMetrics infinite = mminf(lambda, mu);
  EXPECT_NEAR(many.mean_in_system, infinite.mean_in_system, 1e-6);
  EXPECT_LT(many.mean_waiting_time, 1e-9);
}

TEST(Consistency, ThroughputNeverExceedsCapacityOrOffered) {
  for (double rho : {0.2, 0.9, 1.5, 4.0}) {
    for (std::size_t c : {1u, 4u}) {
      const double mu = 3.0;
      const double lambda = rho * mu * static_cast<double>(c);
      const QueueMetrics m = mmck(lambda, mu, c, 3 * c);
      EXPECT_LE(m.throughput, lambda + 1e-12);
      EXPECT_LE(m.throughput, mu * static_cast<double>(c) + 1e-12);
    }
  }
}

}  // namespace
}  // namespace cloudprov::queueing
