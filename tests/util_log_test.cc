#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/log.h"

namespace cloudprov {
namespace {

// The Logger is a process-global singleton; every test restores the default
// configuration (warn level, stderr sink, no time provider) on exit.
class LoggerTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Logger& logger = Logger::instance();
    logger.set_level(LogLevel::kWarn);
    logger.set_sink(nullptr);
    logger.set_time_provider(nullptr);
  }
};

TEST_F(LoggerTest, ParseLevelCoversAllNames) {
  EXPECT_EQ(Logger::parse_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(Logger::parse_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(Logger::parse_level("info"), LogLevel::kInfo);
  EXPECT_EQ(Logger::parse_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(Logger::parse_level("error"), LogLevel::kError);
  EXPECT_EQ(Logger::parse_level("off"), LogLevel::kOff);
  EXPECT_THROW(Logger::parse_level("verbose"), std::invalid_argument);
  EXPECT_THROW(Logger::parse_level(""), std::invalid_argument);
  EXPECT_THROW(Logger::parse_level("WARN"), std::invalid_argument);
}

TEST_F(LoggerTest, EnabledRespectsThreshold) {
  Logger& logger = Logger::instance();
  logger.set_level(LogLevel::kInfo);
  EXPECT_FALSE(logger.enabled(LogLevel::kTrace));
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_TRUE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));

  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
}

TEST_F(LoggerTest, SinkRedirectionAndLevelGating) {
  Logger& logger = Logger::instance();
  std::ostringstream captured;
  logger.set_sink(&captured);
  logger.set_level(LogLevel::kInfo);

  CLOUDPROV_LOG(Info) << "hello " << 42;
  CLOUDPROV_LOG(Debug) << "should be suppressed";

  const std::string text = captured.str();
  EXPECT_NE(text.find("[INFO] hello 42"), std::string::npos);
  EXPECT_EQ(text.find("suppressed"), std::string::npos);
}

TEST_F(LoggerTest, DisabledLevelDoesNotEvaluateStreamArguments) {
  Logger& logger = Logger::instance();
  std::ostringstream captured;
  logger.set_sink(&captured);
  logger.set_level(LogLevel::kWarn);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "value";
  };
  CLOUDPROV_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0);
  CLOUDPROV_LOG(Error) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggerTest, TimeProviderPrefixesLines) {
  Logger& logger = Logger::instance();
  std::ostringstream captured;
  logger.set_sink(&captured);
  logger.set_level(LogLevel::kInfo);
  logger.set_time_provider([] { return 12.5; });

  CLOUDPROV_LOG(Info) << "tick";
  EXPECT_NE(captured.str().find("[t=12.5] tick"), std::string::npos);

  logger.set_time_provider(nullptr);
  captured.str("");
  CLOUDPROV_LOG(Info) << "tock";
  EXPECT_EQ(captured.str().find("[t="), std::string::npos);
}

TEST_F(LoggerTest, FileSinkWritesAndTruncates) {
  Logger& logger = Logger::instance();
  const std::string path = "util_log_test_sink.txt";
  ASSERT_TRUE(logger.set_sink_file(path));
  logger.set_level(LogLevel::kInfo);
  CLOUDPROV_LOG(Info) << "to file";
  logger.set_sink(nullptr);  // closes the file

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "[INFO] to file");
  in.close();
  std::remove(path.c_str());
}

TEST_F(LoggerTest, SinkFileFailureLeavesSinkUnchanged) {
  Logger& logger = Logger::instance();
  std::ostringstream captured;
  logger.set_sink(&captured);
  logger.set_level(LogLevel::kInfo);
  EXPECT_FALSE(logger.set_sink_file("/nonexistent-dir/log.txt"));
  CLOUDPROV_LOG(Info) << "still here";
  EXPECT_NE(captured.str().find("still here"), std::string::npos);
}

}  // namespace
}  // namespace cloudprov
