// Fixed-seed golden cross-check for the event-kernel rewrite.
//
// Every literal below was captured from the pre-rewrite kernel (type-erased
// std::function payloads in a binary std::priority_queue) running the same
// two scenario smokes. The slab/typed-delegate kernel must reproduce them
// bit-for-bit: integers with ==, doubles with exact equality via hexfloat
// literals, and the full span CSV through an FNV-1a hash of the byte stream.
// A mismatch here means the kernel changed observable behavior — event
// ordering, RNG draw sequence, or telemetry sampling — not just performance.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "experiment/runner.h"
#include "experiment/scenario.h"
#include "profile/wall_profiler.h"
#include "telemetry/export.h"

namespace cloudprov {
namespace {

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ULL;
  }
  return hash;
}

/// Golden copy of every deterministic RunMetrics field (wall_seconds is the
/// only field excluded: it measures the host, not the simulation).
struct GoldenMetrics {
  std::uint64_t generated, accepted, rejected, completed, qos_violations;
  double avg_response_time, std_response_time;
  double p95_response_time, p99_response_time;
  double min_instances, max_instances, avg_instances;
  double vm_hours, busy_vm_hours, utilization, rejection_rate;
  std::uint64_t instance_failures, vm_crashes, host_crashes, boot_failures,
      boot_timeouts;
  std::uint64_t lost_requests, lost_to_vm_crashes, lost_to_host_crashes;
  double availability;
  std::uint64_t recoveries;
  double mttr_mean, mttr_max;
  std::uint64_t reconciler_heals, reconciler_retries, reconciler_aborts,
      final_instances;
  std::uint64_t slo_response_alerts, slo_rejection_alerts;
  double slo_worst_burn_rate;
  std::uint64_t drift_windows;
  double drift_response_mape, drift_response_bias;
  std::uint64_t spans_traced;
  std::uint64_t simulated_events;
};

#define EXPECT_FIELD_EQ(field) EXPECT_EQ(m.field, g.field) << #field

void expect_bit_identical(const RunMetrics& m, const GoldenMetrics& g) {
  EXPECT_FIELD_EQ(generated);
  EXPECT_FIELD_EQ(accepted);
  EXPECT_FIELD_EQ(rejected);
  EXPECT_FIELD_EQ(completed);
  EXPECT_FIELD_EQ(qos_violations);
  EXPECT_FIELD_EQ(avg_response_time);
  EXPECT_FIELD_EQ(std_response_time);
  EXPECT_FIELD_EQ(p95_response_time);
  EXPECT_FIELD_EQ(p99_response_time);
  EXPECT_FIELD_EQ(min_instances);
  EXPECT_FIELD_EQ(max_instances);
  EXPECT_FIELD_EQ(avg_instances);
  EXPECT_FIELD_EQ(vm_hours);
  EXPECT_FIELD_EQ(busy_vm_hours);
  EXPECT_FIELD_EQ(utilization);
  EXPECT_FIELD_EQ(rejection_rate);
  EXPECT_FIELD_EQ(instance_failures);
  EXPECT_FIELD_EQ(vm_crashes);
  EXPECT_FIELD_EQ(host_crashes);
  EXPECT_FIELD_EQ(boot_failures);
  EXPECT_FIELD_EQ(boot_timeouts);
  EXPECT_FIELD_EQ(lost_requests);
  EXPECT_FIELD_EQ(lost_to_vm_crashes);
  EXPECT_FIELD_EQ(lost_to_host_crashes);
  EXPECT_FIELD_EQ(availability);
  EXPECT_FIELD_EQ(recoveries);
  EXPECT_FIELD_EQ(mttr_mean);
  EXPECT_FIELD_EQ(mttr_max);
  EXPECT_FIELD_EQ(reconciler_heals);
  EXPECT_FIELD_EQ(reconciler_retries);
  EXPECT_FIELD_EQ(reconciler_aborts);
  EXPECT_FIELD_EQ(final_instances);
  EXPECT_FIELD_EQ(slo_response_alerts);
  EXPECT_FIELD_EQ(slo_rejection_alerts);
  EXPECT_FIELD_EQ(slo_worst_burn_rate);
  EXPECT_FIELD_EQ(drift_windows);
  EXPECT_FIELD_EQ(drift_response_mape);
  EXPECT_FIELD_EQ(drift_response_bias);
  EXPECT_FIELD_EQ(spans_traced);
  EXPECT_FIELD_EQ(simulated_events);
}

#undef EXPECT_FIELD_EQ

// Figure 5 smoke configuration: web workload at scale 0.01, one day,
// adaptive policy, seed 42, every request traced.
ScenarioConfig fig5_config() {
  ScenarioConfig config = web_scenario(0.01);
  config.horizon = 86400.0;
  config.web.horizon = config.horizon;
  return config;
}

TelemetryOptions fig5_telemetry(const ScenarioConfig& config) {
  TelemetryOptions opts;
  opts.span_sample_rate = 1.0;
  opts.drift_enabled = true;
  opts.drift.qos_max_response_time = config.qos.max_response_time;
  opts.slo_enabled = true;
  opts.slo.log_alerts = false;
  return opts;
}

// Golden literals of the Figure 5 smoke, captured 2026-08 from the
// pre-rewrite kernel. Shared by the kernel test and the market no-op test:
// a market buying pure on-demand capacity must reproduce every one.
GoldenMetrics fig5_golden() {
  GoldenMetrics g{};
  g.generated=707184; g.accepted=676603; g.rejected=30581; g.completed=676603; g.qos_violations=0;
  g.avg_response_time=0x1.e89d23e44bea6p-4; g.std_response_time=0x1.bd98ac964c12fp-6;
  g.p95_response_time=0x1.88639ec3041d5p-3; g.p99_response_time=0x1.a815581ff9e3p-3;
  g.min_instances=0x1p+0; g.max_instances=0x1p+1; g.avg_instances=0x1.cad82d82d82d8p+0;
  g.vm_hours=0x1.5822222222222p+5; g.busy_vm_hours=0x1.3bbff6c5920b7p+4; g.utilization=0x1.d5c56d2983e2ap-2; g.rejection_rate=0x1.623fdcc8e3a5fp-5;
  g.instance_failures=0; g.vm_crashes=0; g.host_crashes=0; g.boot_failures=0; g.boot_timeouts=0;
  g.lost_requests=0; g.lost_to_vm_crashes=0; g.lost_to_host_crashes=0;
  g.availability=0x1p+0; g.recoveries=0; g.mttr_mean=0x0p+0; g.mttr_max=0x0p+0;
  g.reconciler_heals=0; g.reconciler_retries=0; g.reconciler_aborts=0; g.final_instances=2;
  g.slo_response_alerts=0; g.slo_rejection_alerts=4; g.slo_worst_burn_rate=0x1.7f84aa656d227p+4;
  g.drift_windows=1440; g.drift_response_mape=0x1.0fec0be5c6417p+4; g.drift_response_bias=0x1.46dbc50b9b7e1p-6; g.spans_traced=707184;
  g.simulated_events=1385227;
  return g;
}

void expect_fig5_span_csv(const RunOutput& out) {
  // The span trace pins per-request timing end to end: one flipped bit in
  // any arrival, admission, or completion timestamp changes the hash.
  ASSERT_NE(out.telemetry, nullptr);
  std::ostringstream csv;
  write_span_csv(csv, *out.telemetry->spans());
  const std::string bytes = csv.str();
  EXPECT_EQ(bytes.size(), 14729937u);
  EXPECT_EQ(fnv1a(bytes), 0xbdf90a2e3fd773c6ULL);
}

TEST(KernelGolden, Fig5SmokeWithTelemetryIsBitIdentical) {
  const ScenarioConfig config = fig5_config();
  const RunOutput out = run_scenario(config, PolicySpec::adaptive(), 42,
                                     fig5_telemetry(config));
  expect_bit_identical(out.metrics, fig5_golden());
  expect_fig5_span_csv(out);
}

// The market layer must be a strict no-op when it only sells on-demand
// capacity at the inherited boot delay: same goldens, same span bytes, plus
// a billed ledger on the side (ISSUE 5 acceptance).
TEST(KernelGolden, MarketPureOnDemandReproducesFig5Goldens) {
  ScenarioConfig config = fig5_config();
  config.market.enabled = true;  // standard catalog, spot_fraction 0, bid 0
  const RunOutput out = run_scenario(config, PolicySpec::adaptive(), 42,
                                     fig5_telemetry(config));
  expect_bit_identical(out.metrics, fig5_golden());
  expect_fig5_span_csv(out);

  // The ledger exists and bills every purchase, but scheduled zero events.
  EXPECT_GT(out.metrics.billed_cost, 0.0);
  EXPECT_GT(out.metrics.on_demand_purchases, 0u);
  EXPECT_EQ(out.metrics.spot_purchases, 0u);
  EXPECT_EQ(out.metrics.spot_revocations, 0u);
}

// The resilience layer must be a strict no-op when enabled with every
// feature neutral (no timeout, single attempt, no budget/breaker/shed):
// attempt 1 forwards the Broker's request verbatim and the gateway draws no
// RNG and schedules no events, so the goldens and the span bytes are
// reproduced exactly — with client-side accounting on the side (ISSUE 7
// acceptance).
TEST(KernelGolden, NeutralResilienceReproducesFig5Goldens) {
  ScenarioConfig config = fig5_config();
  config.resilience.enabled = true;  // defaults: everything off
  const RunOutput out = run_scenario(config, PolicySpec::adaptive(), 42,
                                     fig5_telemetry(config));
  expect_bit_identical(out.metrics, fig5_golden());
  expect_fig5_span_csv(out);

  // The gateway observed every request without perturbing the run.
  EXPECT_EQ(out.metrics.client_requests, out.metrics.generated);
  EXPECT_EQ(out.metrics.client_attempts, out.metrics.generated);
  EXPECT_EQ(out.metrics.client_succeeded, out.metrics.completed);
  EXPECT_EQ(out.metrics.client_failed, out.metrics.rejected);
  EXPECT_EQ(out.metrics.client_retries, 0u);
  EXPECT_EQ(out.metrics.client_timeouts, 0u);
  EXPECT_EQ(out.metrics.breaker_opens, 0u);
  EXPECT_EQ(out.metrics.shed_deadline, 0u);
  EXPECT_EQ(out.metrics.shed_brownout, 0u);
}

// The wall-clock profiler is output-only: attaching one must leave every
// metric and every span byte bit-identical (ISSUE 8 acceptance). This is
// the strongest statement of "profiling cannot perturb the simulation" —
// one extra RNG draw, one reordered event, or one perturbed timestamp
// anywhere would flip the span hash.
TEST(KernelGolden, ProfiledFig5ReproducesGoldens) {
  const ScenarioConfig config = fig5_config();
  WallProfiler profiler(/*snapshot_interval_seconds=*/0.01);
  const RunOutput out = run_scenario(config, PolicySpec::adaptive(), 42,
                                     fig5_telemetry(config), &profiler);
  expect_bit_identical(out.metrics, fig5_golden());
  expect_fig5_span_csv(out);

  // And the profiler really observed the run while staying invisible.
  const auto& totals = profiler.totals();
  EXPECT_EQ(totals[static_cast<std::size_t>(ProfileCategory::kEngineRun)].count,
            1u);
  EXPECT_GT(
      totals[static_cast<std::size_t>(ProfileCategory::kPolicyDecision)].count,
      0u);
  ASSERT_FALSE(profiler.snapshots().empty());
  EXPECT_EQ(profiler.snapshots().back().executed_events,
            out.metrics.simulated_events);
  EXPECT_GT(profiler.snapshots().back().heap_high_water, 0u);
}

// Fault-ablation smoke: same workload with stochastic VM/host crashes, boot
// faults, degradations, an allocation outage, a scripted host crash, and the
// reconciler — covers the cancellation path (completion events of failed
// VMs) and every boxed-closure scheduler. Seed 7, telemetry off.
TEST(KernelGolden, FaultAblationSmokeIsBitIdentical) {
  ScenarioConfig config = web_scenario(0.01);
  config.horizon = 86400.0;
  config.web.horizon = config.horizon;
  config.fault.vm_mtbf = 4.0 * 3600.0;
  config.fault.host_mtbf = 12.0 * 3600.0;
  config.fault.boot_fail_prob = 0.1;
  config.fault.straggler_prob = 0.1;
  config.fault.degraded_mtbf = 2.0 * 3600.0;
  config.fault.outages.push_back({30000.0, 32000.0});
  config.fault.scripted.push_back({ScriptedFault::Kind::kHostCrash, 40000.0, 1});
  config.boot_timeout = 300.0;
  config.reconciler.enabled = true;
  config.reconciler.interval = 60.0;
  const RunOutput out = run_scenario(config, PolicySpec::adaptive(), 7);

  GoldenMetrics g{};
  g.generated=706949; g.accepted=677908; g.rejected=29041; g.completed=677905; g.qos_violations=6275;
  g.avg_response_time=0x1.02a3b4dc745a5p-3; g.std_response_time=0x1.9e2e88e3b5937p-5;
  g.p95_response_time=0x1.bcaf0485fe111p-3; g.p99_response_time=0x1.374210281e37dp-2;
  g.min_instances=0x1p+0; g.max_instances=0x1p+2; g.avg_instances=0x1.a5b8ec3682487p+1;
  g.vm_hours=0x1.3c4ab128e1b65p+6; g.busy_vm_hours=0x1.77bbb3dbb66e1p+4; g.utilization=0x1.301c553cb1bcbp-2; g.rejection_rate=0x1.50859ffee0405p-5;
  g.instance_failures=13; g.vm_crashes=9; g.host_crashes=1; g.boot_failures=3; g.boot_timeouts=0;
  g.lost_requests=3; g.lost_to_vm_crashes=3; g.lost_to_host_crashes=0;
  g.availability=0x1.fcef11901482bp-1; g.recoveries=13; g.mttr_mean=0x1.3e681b3f10876p+5; g.mttr_max=0x1.ep+5;
  g.reconciler_heals=0; g.reconciler_retries=0; g.reconciler_aborts=0; g.final_instances=2;
  g.slo_response_alerts=0; g.slo_rejection_alerts=0; g.slo_worst_burn_rate=0x0p+0;
  g.drift_windows=0; g.drift_response_mape=0x0p+0; g.drift_response_bias=0x0p+0; g.spans_traced=0;
  g.simulated_events=1387838;
  expect_bit_identical(out.metrics, g);
}

}  // namespace
}  // namespace cloudprov
