// Fault-domain failure model and self-healing reconciler tests (src/fault):
// host-crash cascades, boot failures/timeouts, outage windows, degradation,
// reconciler retry/backoff/abort semantics, and the determinism guarantees
// (fault streams independent of the workload stream; telemetry observational).
#include <gtest/gtest.h>

#include <memory>

#include "core/application_provisioner.h"
#include "experiment/runner.h"
#include "fault/fault_injector.h"
#include "fault/reconciler.h"

namespace cloudprov {
namespace {

struct World {
  Simulation sim;
  Datacenter datacenter;

  explicit World(std::size_t hosts = 4, SimTime boot_delay = 0.0)
      : datacenter(sim, make_config(hosts, boot_delay),
                   std::make_unique<LeastLoadedPlacement>()) {}

  static DatacenterConfig make_config(std::size_t hosts, SimTime boot_delay) {
    DatacenterConfig config;
    config.host_count = hosts;
    config.vm_boot_delay = boot_delay;
    return config;
  }
};

Request make_request(std::uint64_t id, SimTime t, double demand) {
  Request r;
  r.id = id;
  r.arrival_time = t;
  r.service_demand = demand;
  return r;
}

ProvisionerConfig provisioner_config() {
  ProvisionerConfig config;
  config.initial_service_time_estimate = 0.1;
  return config;
}

QosTargets lenient_qos() {
  QosTargets qos;
  qos.max_response_time = 10.0;
  return qos;
}

// ---------------------------------------------------------------- host crash

TEST(HostCrash, KillsEveryResidentVmAndStopsAcceptingPlacements) {
  World world(2);  // 2 x 8 cores
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  provisioner.scale_to(10);  // least-loaded: 5 per host

  const std::size_t killed = world.datacenter.fail_host(0);
  EXPECT_EQ(killed, 5u);
  EXPECT_EQ(provisioner.active_instances(), 5u);
  EXPECT_EQ(world.datacenter.live_vm_count(), 5u);
  EXPECT_EQ(world.datacenter.failed_hosts(), 1u);
  EXPECT_EQ(provisioner.failures_by_cause(FaultCause::kHostCrash), 5u);
  // The failed host is out of the placement pool: only 3 free slots remain.
  EXPECT_EQ(world.datacenter.remaining_capacity(VmSpec{}), 3u);
  EXPECT_EQ(provisioner.scale_to(10), 8u);
  // Crashing an already-failed host is a no-op.
  EXPECT_EQ(world.datacenter.fail_host(0), 0u);
  EXPECT_EQ(world.datacenter.failed_hosts(), 1u);
}

TEST(HostCrash, LostInFlightRequestsAreAttributedToTheHostCause) {
  World world(1);
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  provisioner.scale_to(2);
  provisioner.on_request(make_request(1, 0.0, 5.0));
  provisioner.on_request(make_request(2, 0.0, 5.0));

  EXPECT_EQ(world.datacenter.fail_host(0), 2u);
  EXPECT_EQ(provisioner.lost_to_failures(), 2u);
  EXPECT_EQ(provisioner.lost_by_cause(FaultCause::kHostCrash), 2u);
  EXPECT_EQ(provisioner.lost_by_cause(FaultCause::kVmCrash), 0u);
  EXPECT_EQ(provisioner.active_instances(), 0u);
  world.sim.run();  // cancelled completions must not fire
  EXPECT_EQ(provisioner.completed(), 0u);
}

// ---------------------------------------------------------------- boot faults

TEST(BootFault, PlannedBootFailureFiresCallbackExactlyOnce) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{}, /*boot_delay=*/0.0, /*fail_boot=*/true);
  EXPECT_EQ(vm.state(), VmState::kBooting);  // even with zero delay
  EXPECT_TRUE(vm.boot_failure_planned());
  int calls = 0;
  FaultCause seen = FaultCause::kVmCrash;
  vm.set_failure_callback(
      [&](Vm&, FaultCause cause, const std::vector<Request>&) {
        ++calls;
        seen = cause;
      });
  sim.run();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, FaultCause::kBootFailure);
  EXPECT_EQ(vm.state(), VmState::kDestroyed);
  // A destroyed VM cannot fail again; the callback never re-fires.
  EXPECT_THROW((void)vm.fail(), std::logic_error);
  EXPECT_EQ(calls, 1);
}

TEST(BootFault, ProvisionerDropsBootFailedInstanceAndCanReplaceIt) {
  World world(1);
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  // First boot is planned to fail; subsequent ones are clean.
  int boots = 0;
  world.datacenter.set_boot_fault_sampler(
      [&boots](SimTime, SimTime base) {
        return Datacenter::BootOutcome{base, boots++ == 0};
      });
  provisioner.scale_to(1);
  EXPECT_EQ(provisioner.active_instances(), 1u);  // booting
  world.sim.run();
  EXPECT_EQ(provisioner.active_instances(), 0u);
  EXPECT_EQ(provisioner.failures_by_cause(FaultCause::kBootFailure), 1u);
  EXPECT_EQ(world.datacenter.live_vm_count(), 0u);  // resources released
  EXPECT_EQ(provisioner.scale_to(1), 1u);           // replacement placeable
}

TEST(BootFault, WatchdogFailsInstancesStuckInBoot) {
  World world(1, /*boot_delay=*/100.0);
  ProvisionerConfig config = provisioner_config();
  config.boot_timeout = 10.0;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     config);
  provisioner.scale_to(1);
  world.sim.run();
  EXPECT_EQ(provisioner.boot_timeouts(), 1u);
  EXPECT_EQ(provisioner.active_instances(), 0u);
  EXPECT_EQ(world.datacenter.live_vm_count(), 0u);
}

TEST(BootFault, WatchdogPlusReconcilerReplacesStragglerBoot) {
  World world(1, /*boot_delay=*/1.0);
  ProvisionerConfig config = provisioner_config();
  config.boot_timeout = 10.0;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     config);
  // First boot straggles far beyond the watchdog; replacements are normal.
  int boots = 0;
  world.datacenter.set_boot_fault_sampler(
      [&boots](SimTime, SimTime base) {
        return Datacenter::BootOutcome{boots++ == 0 ? 1000.0 : base, false};
      });
  ReconcilerConfig rc;
  rc.enabled = true;
  rc.interval = 5.0;
  Reconciler reconciler(world.sim, provisioner, rc);
  provisioner.scale_to(1);
  reconciler.start();
  world.sim.run(50.0);
  EXPECT_EQ(provisioner.boot_timeouts(), 1u);
  ASSERT_EQ(provisioner.active_instances(), 1u);
  provisioner.for_each_instance(
      [](Vm& vm) { EXPECT_EQ(vm.state(), VmState::kRunning); });
  reconciler.stop();
}

// ------------------------------------------------------- draining interactions

TEST(DrainFault, CrashOfDrainingInstanceDoesNotResurrectIt) {
  World world(1);
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  provisioner.scale_to(2);
  provisioner.on_request(make_request(1, 0.0, 5.0));
  provisioner.on_request(make_request(2, 0.0, 5.0));
  provisioner.scale_to(1);  // both busy: one drains
  ASSERT_EQ(provisioner.draining_instances(), 1u);

  // Crash the draining instance (live index 1: actives first).
  EXPECT_EQ(provisioner.inject_instance_failure(1), 1u);
  EXPECT_EQ(provisioner.draining_instances(), 0u);
  EXPECT_EQ(provisioner.active_instances(), 1u);
  // Scale-up must create a fresh VM, not resurrect the crashed one.
  EXPECT_EQ(provisioner.scale_to(2), 2u);
  EXPECT_EQ(world.datacenter.total_vms_created(), 3u);
  world.sim.run();
  EXPECT_EQ(provisioner.completed(), 1u);  // the survivor's request
}

// ---------------------------------------------------------- fault injector

TEST(FaultInjectorTest, VmCrashStreamMatchesConfiguredRate) {
  World world;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  provisioner.scale_to(10);
  FaultPlan plan;
  plan.vm_mtbf = 1000.0;  // 10 instances -> ~1 failure / 100 s
  FaultInjector injector(world.sim, world.datacenter, provisioner, plan, 11);
  injector.start();
  // Keep the pool at 10 so the rate stays constant.
  PeriodicProcess heal(world.sim, 50.0, 50.0,
                       [&](SimTime) { provisioner.scale_to(10); });
  world.sim.run(20000.0);
  EXPECT_GT(injector.vm_crashes(), 140u);
  EXPECT_LT(injector.vm_crashes(), 270u);
  EXPECT_EQ(provisioner.instance_failures(), injector.vm_crashes());
  injector.stop();
  heal.stop();
}

TEST(FaultInjectorTest, IdleStreamsRetryWithoutFiring) {
  World world;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  FaultPlan plan;
  plan.vm_mtbf = 10.0;
  plan.host_mtbf = 10.0;  // no occupied hosts either
  FaultInjector injector(world.sim, world.datacenter, provisioner, plan, 12);
  injector.start();
  world.sim.run(500.0);
  EXPECT_EQ(injector.vm_crashes(), 0u);
  EXPECT_EQ(injector.host_crashes(), 0u);
  injector.stop();
}

TEST(FaultInjectorTest, StopWithPendingEventsIsSafeAndRestartable) {
  World world;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  provisioner.scale_to(4);
  FaultPlan plan;
  plan.vm_mtbf = 10.0;
  plan.outages.push_back({100.0, 200.0});
  FaultInjector injector(world.sim, world.datacenter, provisioner, plan, 13);
  injector.start();
  injector.stop();  // cancels the pending crash and both outage edges
  world.sim.run(1000.0);
  EXPECT_EQ(injector.vm_crashes(), 0u);
  EXPECT_EQ(provisioner.instance_failures(), 0u);
  EXPECT_FALSE(world.datacenter.allocation_suspended());

  injector.start();  // restartable; outage edges are in the past now
  world.sim.run(2000.0);
  EXPECT_GT(injector.vm_crashes(), 0u);
  injector.stop();
}

TEST(FaultInjectorTest, OutageWindowSuspendsAndRestoresAllocation) {
  World world(1);
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  FaultPlan plan;
  plan.outages.push_back({100.0, 200.0});
  FaultInjector injector(world.sim, world.datacenter, provisioner, plan, 14);
  injector.start();

  world.sim.run(150.0);
  EXPECT_TRUE(world.datacenter.allocation_suspended());
  EXPECT_EQ(provisioner.scale_to(3), 0u);  // API down, not capacity
  world.sim.run(250.0);
  EXPECT_FALSE(world.datacenter.allocation_suspended());
  EXPECT_EQ(provisioner.scale_to(3), 3u);
  injector.stop();
}

TEST(FaultInjectorTest, ScriptedHostCrashFiresAtTheScriptedTime) {
  World world(2);
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  provisioner.scale_to(8);  // 4 per host
  FaultPlan plan;
  plan.scripted.push_back({ScriptedFault::Kind::kHostCrash, 100.0, 0});
  FaultInjector injector(world.sim, world.datacenter, provisioner, plan, 15);
  injector.start();
  world.sim.run(99.0);
  EXPECT_EQ(world.datacenter.failed_hosts(), 0u);
  world.sim.run(101.0);
  EXPECT_EQ(world.datacenter.failed_hosts(), 1u);
  EXPECT_EQ(provisioner.active_instances(), 4u);
  EXPECT_EQ(provisioner.failures_by_cause(FaultCause::kHostCrash), 4u);
  injector.stop();
}

TEST(FaultInjectorTest, DegradedInstanceSlowsDownThenRecovers) {
  World world(1);
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  provisioner.scale_to(1);
  Vm* vm = nullptr;
  provisioner.for_each_instance([&vm](Vm& v) { vm = &v; });
  ASSERT_NE(vm, nullptr);

  FaultPlan plan;
  plan.degraded_mtbf = 10000.0;
  plan.degraded_factor = 0.5;
  plan.degraded_duration = 5.0;
  FaultInjector injector(world.sim, world.datacenter, provisioner, plan, 16);
  injector.start();
  // Step until the (exponentially-timed) degradation hits.
  while (vm->spec().speed == 1.0 && world.sim.now() < 1e6) {
    ASSERT_TRUE(world.sim.step());
  }
  EXPECT_DOUBLE_EQ(vm->spec().speed, 0.5);
  EXPECT_EQ(injector.degradations(), 1u);
  // Restored after the degradation episode (mtbf is huge, so no second
  // episode lands in this window).
  world.sim.run(world.sim.now() + plan.degraded_duration + 0.1);
  EXPECT_DOUBLE_EQ(vm->spec().speed, 1.0);
  injector.stop();
}

// -------------------------------------------------------------- reconciler

TEST(ReconcilerTest, ReplacesCrashedInstanceWithinOneInterval) {
  World world(2);
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  provisioner.scale_to(5);
  ReconcilerConfig rc;
  rc.enabled = true;
  rc.interval = 30.0;
  Reconciler reconciler(world.sim, provisioner, rc);
  reconciler.start();
  world.sim.schedule_at(40.0,
                        [&] { provisioner.inject_instance_failure(0); });
  world.sim.run(200.0);
  EXPECT_EQ(provisioner.active_instances(), 5u);
  EXPECT_EQ(reconciler.heals(), 1u);
  EXPECT_EQ(reconciler.retries(), 0u);
  // Deficit opened at t=40, healed at the t=60 tick: one 20 s MTTR sample.
  ASSERT_EQ(provisioner.recovery_time_stats().count(), 1u);
  EXPECT_DOUBLE_EQ(provisioner.recovery_time_stats().mean(), 20.0);
  EXPECT_DOUBLE_EQ(provisioner.deficit_seconds(), 20.0);
  reconciler.stop();
}

TEST(ReconcilerTest, BoundedBackoffAbortsThenHealsAfterOutage) {
  World world(1);
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  provisioner.scale_to(4);
  FaultPlan plan;
  plan.outages.push_back({5.0, 300.0});
  FaultInjector injector(world.sim, world.datacenter, provisioner, plan, 17);
  ReconcilerConfig rc;
  rc.enabled = true;
  rc.interval = 10.0;
  rc.backoff_base = 5.0;
  rc.backoff_factor = 2.0;
  rc.backoff_max = 60.0;
  rc.max_retries = 3;
  Reconciler reconciler(world.sim, provisioner, rc);
  injector.start();
  reconciler.start();
  world.sim.schedule_at(22.0,
                        [&] { provisioner.inject_instance_failure(0); });
  world.sim.run(400.0);
  // Heals during the outage fall short -> 3 backoff retries, one abort,
  // then interval-cadence checking heals the pool once the outage lifts.
  EXPECT_EQ(reconciler.retries(), 3u);
  EXPECT_EQ(reconciler.aborts(), 1u);
  EXPECT_FALSE(reconciler.in_aborted_state());
  EXPECT_EQ(provisioner.active_instances(), 4u);
  ASSERT_EQ(provisioner.recovery_time_stats().count(), 1u);
  EXPECT_GT(provisioner.recovery_time_stats().mean(), 275.0);
  injector.stop();
  reconciler.stop();
}

// Regression: a commanded-target change mid-deficit (the adaptive policy
// re-sizing while the IaaS allocation API is down) must not reset the backoff
// ladder — otherwise every policy tick restarts fast retries and the
// reconciler hammers the provider for the whole outage.
TEST(ReconcilerTest, TargetChangeDuringOutageKeepsBackoffLadder) {
  World world(1);
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  provisioner.scale_to(4);
  FaultPlan plan;
  plan.outages.push_back({5.0, 300.0});
  FaultInjector injector(world.sim, world.datacenter, provisioner, plan, 17);
  ReconcilerConfig rc;
  rc.enabled = true;
  rc.interval = 10.0;
  rc.backoff_base = 5.0;
  rc.backoff_factor = 2.0;
  rc.backoff_max = 60.0;
  rc.max_retries = 3;
  Reconciler reconciler(world.sim, provisioner, rc);
  injector.start();
  reconciler.start();
  world.sim.schedule_at(22.0,
                        [&] { provisioner.inject_instance_failure(0); });
  // Ladder so far: tick t=30 (heal falls short, retry in 5), retry t=35
  // (short, retry in 10). The target change lands between retries...
  world.sim.schedule_at(40.0, [&] { provisioner.scale_to(5); });
  world.sim.run(400.0);
  // ...and the t=45 retry must continue the escalation (attempt 3, then the
  // abort) rather than opening a fresh episode with its budget refilled.
  EXPECT_EQ(reconciler.retries(), rc.max_retries);
  EXPECT_EQ(reconciler.aborts(), 1u);
  EXPECT_FALSE(reconciler.in_aborted_state());
  EXPECT_EQ(provisioner.active_instances(), 5u);
  injector.stop();
  reconciler.stop();
}

TEST(ReconcilerTest, AvailabilityReflectsDeficitTime) {
  World world(1);
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  provisioner.scale_to(4);
  ReconcilerConfig rc;
  rc.enabled = true;
  rc.interval = 10.0;
  Reconciler reconciler(world.sim, provisioner, rc);
  reconciler.start();
  world.sim.schedule_at(15.0,
                        [&] { provisioner.inject_instance_failure(0); });
  world.sim.run(100.0);
  // Deficit from t=15 to the t=20 tick.
  EXPECT_DOUBLE_EQ(provisioner.deficit_seconds(), 5.0);
  reconciler.stop();
}

// ---------------------------------------------------------------- fault plan

TEST(FaultPlanTest, EnabledAndValidation) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.validate();  // defaults are valid
  plan.vm_mtbf = 3600.0;
  EXPECT_TRUE(plan.enabled());
  plan.boot_fail_prob = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.boot_fail_prob = 0.0;
  plan.outages.push_back({200.0, 100.0});
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlanTest, ParseOutageWindows) {
  const auto one = parse_outage_windows("100:200");
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0].begin, 100.0);
  EXPECT_DOUBLE_EQ(one[0].end, 200.0);

  const auto two = parse_outage_windows("0:1.5,3600:7200");
  ASSERT_EQ(two.size(), 2u);
  EXPECT_DOUBLE_EQ(two[0].end, 1.5);
  EXPECT_DOUBLE_EQ(two[1].begin, 3600.0);

  EXPECT_THROW(parse_outage_windows("abc"), std::invalid_argument);
  EXPECT_THROW(parse_outage_windows("100"), std::invalid_argument);
  EXPECT_THROW(parse_outage_windows("200:100"), std::invalid_argument);
  EXPECT_THROW(parse_outage_windows("100:200x"), std::invalid_argument);
}

// ------------------------------------------------------------- determinism

ScenarioConfig faulted_scenario() {
  ScenarioConfig config = scientific_scenario(1.0);
  config.horizon = 6.0 * 3600.0;
  config.bot.horizon = config.horizon;
  config.datacenter.vm_boot_delay = 30.0;
  config.boot_timeout = 120.0;
  config.fault.vm_mtbf = 2.0 * 3600.0;
  config.fault.host_mtbf = 12.0 * 3600.0;
  config.fault.boot_fail_prob = 0.05;
  config.fault.straggler_prob = 0.05;
  config.fault.outages.push_back({2.0 * 3600.0, 2.5 * 3600.0});
  config.reconciler.enabled = true;
  return config;
}

void expect_identical_metrics(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.qos_violations, b.qos_violations);
  EXPECT_EQ(a.avg_response_time, b.avg_response_time);
  EXPECT_EQ(a.std_response_time, b.std_response_time);
  EXPECT_EQ(a.min_instances, b.min_instances);
  EXPECT_EQ(a.max_instances, b.max_instances);
  EXPECT_EQ(a.avg_instances, b.avg_instances);
  EXPECT_EQ(a.vm_hours, b.vm_hours);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.instance_failures, b.instance_failures);
  EXPECT_EQ(a.vm_crashes, b.vm_crashes);
  EXPECT_EQ(a.host_crashes, b.host_crashes);
  EXPECT_EQ(a.boot_failures, b.boot_failures);
  EXPECT_EQ(a.boot_timeouts, b.boot_timeouts);
  EXPECT_EQ(a.lost_requests, b.lost_requests);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.recoveries, b.recoveries);
  EXPECT_EQ(a.mttr_mean, b.mttr_mean);
  EXPECT_EQ(a.reconciler_heals, b.reconciler_heals);
  EXPECT_EQ(a.reconciler_retries, b.reconciler_retries);
  EXPECT_EQ(a.reconciler_aborts, b.reconciler_aborts);
  EXPECT_EQ(a.final_instances, b.final_instances);
  EXPECT_EQ(a.simulated_events, b.simulated_events);
}

TEST(FaultDeterminism, SameSeedSameMetricsAndTelemetryIsObservational) {
  const ScenarioConfig config = faulted_scenario();
  const RunMetrics first =
      run_scenario(config, PolicySpec::adaptive(), 4242).metrics;
  const RunMetrics repeat =
      run_scenario(config, PolicySpec::adaptive(), 4242).metrics;
  expect_identical_metrics(first, repeat);

  TelemetryOptions opts;
  opts.trace_capacity = 1 << 14;
  const RunMetrics traced =
      run_scenario(config, PolicySpec::adaptive(), 4242, opts).metrics;
  expect_identical_metrics(first, traced);

  // The plan actually exercised the fault machinery.
  EXPECT_GT(first.instance_failures, 0u);
  EXPECT_GT(first.reconciler_heals, 0u);
  EXPECT_LT(first.availability, 1.0);
  EXPECT_GE(first.availability, 0.0);
}

TEST(FaultDeterminism, FaultStreamIsIndependentOfTheWorkloadStream) {
  // Enabling faults must not perturb the workload: the generated request
  // count is identical with and without the fault plan for the same seed.
  ScenarioConfig faulted = faulted_scenario();
  ScenarioConfig clean = faulted;
  clean.fault = FaultPlan{};
  clean.reconciler.enabled = false;
  clean.boot_timeout = 0.0;
  clean.datacenter.vm_boot_delay = 0.0;
  const RunMetrics with_faults =
      run_scenario(faulted, PolicySpec::adaptive(), 777).metrics;
  const RunMetrics without =
      run_scenario(clean, PolicySpec::adaptive(), 777).metrics;
  EXPECT_EQ(with_faults.generated, without.generated);
  EXPECT_EQ(without.instance_failures, 0u);
  EXPECT_DOUBLE_EQ(without.availability, 1.0);
}

TEST(FaultDeterminism, StaticPolicyHealsOnlyWithTheReconciler) {
  ScenarioConfig config = faulted_scenario();
  config.fault = FaultPlan{};
  config.datacenter.vm_boot_delay = 0.0;
  config.boot_timeout = 0.0;
  config.horizon = 2.0 * 3600.0;
  config.bot.horizon = config.horizon;
  config.fault.scripted.push_back(
      {ScriptedFault::Kind::kVmCrash, 1800.0, 0});
  config.fault.scripted.push_back(
      {ScriptedFault::Kind::kVmCrash, 1900.0, 1});

  const PolicySpec static15 = PolicySpec::fixed(15);
  config.reconciler.enabled = false;
  const RunMetrics bare = run_scenario(config, static15, 99).metrics;
  config.reconciler.enabled = true;
  const RunMetrics healed = run_scenario(config, static15, 99).metrics;

  EXPECT_EQ(bare.final_instances, 13u);  // permanent loss
  EXPECT_EQ(healed.final_instances, 15u);
  EXPECT_GE(healed.reconciler_heals, 2u);
  EXPECT_GT(bare.availability, 0.0);
  EXPECT_GT(healed.availability, bare.availability);
}

}  // namespace
}  // namespace cloudprov
