// Cross-module integration tests.
//
// The most important suite here validates the discrete-event simulator
// against the closed-form queueing models — the same methodological link the
// paper depends on (its modeler assumes the simulated system behaves like
// the Figure-2 queueing network).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "cloud/broker.h"
#include "core/adaptive_policy.h"
#include "core/application_provisioner.h"
#include "core/provisioning_policy.h"
#include "predict/oracle.h"
#include "predict/periodic_profile.h"
#include "queueing/mm1.h"
#include "queueing/mm1k.h"
#include "queueing/mmc.h"
#include "workload/poisson_source.h"
#include "workload/trace.h"

namespace cloudprov {
namespace {

struct World {
  Simulation sim;
  Datacenter datacenter;
  ApplicationProvisioner provisioner;

  World(QosTargets qos, ProvisionerConfig config, std::size_t hosts = 64)
      : datacenter(sim, make_dc(hosts), std::make_unique<LeastLoadedPlacement>()),
        provisioner(sim, datacenter, qos, config) {}

  static DatacenterConfig make_dc(std::size_t hosts) {
    DatacenterConfig config;
    config.host_count = hosts;
    return config;
  }
};

// ----------------------------------------------------------------------
// Simulated M/M/1/k vs closed form: one instance with exponential service,
// Poisson arrivals, and the provisioner's k-bound admission control.
// ----------------------------------------------------------------------

struct Mm1kCase {
  double lambda;
  double mu;
  std::size_t k;
};

class SimulatedMm1kTest : public ::testing::TestWithParam<Mm1kCase> {};

TEST_P(SimulatedMm1kTest, RejectionAndResponseMatchTheory) {
  const Mm1kCase& c = GetParam();
  QosTargets qos;
  // Force queue bound k via the fixed override; Ts only matters for
  // violation counting here.
  qos.max_response_time = 1e9;
  ProvisionerConfig config;
  config.fixed_queue_bound = c.k;
  config.initial_service_time_estimate = 1.0 / c.mu;
  World world(qos, config);
  world.provisioner.scale_to(1);

  const double horizon = 400000.0 / c.lambda;  // ~400k offered requests
  PoissonSource source(
      c.lambda, std::make_shared<ExponentialDistribution>(c.mu), 0.0, horizon);
  Broker broker(world.sim, source, world.provisioner, Rng(c.k * 1000 + 7));
  broker.start();
  world.sim.run();

  const auto theory = queueing::mm1k(c.lambda, c.mu, c.k);
  EXPECT_NEAR(world.provisioner.rejection_rate(), theory.blocking_probability,
              0.01 + 0.05 * theory.blocking_probability);
  EXPECT_NEAR(world.provisioner.response_time_stats().mean(),
              theory.mean_response_time, 0.03 * theory.mean_response_time);
  // Server utilization = busy fraction = 1 - P0.
  EXPECT_NEAR(world.datacenter.utilization(), theory.server_utilization,
              0.02);
}

INSTANTIATE_TEST_SUITE_P(
    LoadSweep, SimulatedMm1kTest,
    ::testing::Values(Mm1kCase{2.0, 10.0, 2},   // light load
                      Mm1kCase{8.0, 10.0, 2},   // the paper's rho ~ 0.8, k = 2
                      Mm1kCase{9.5, 10.0, 3},   // heavy load
                      Mm1kCase{15.0, 10.0, 2},  // overload
                      Mm1kCase{5.0, 10.0, 1})); // loss system

TEST(SimulatedPool, GlobalAdmissionBeatsIndependentSplitModel) {
  // The paper's conservatism argument (DESIGN.md): with m instances and
  // round-robin + reject-only-when-all-full admission, simulated rejection is
  // far below the per-instance M/M/1/k model's prediction.
  QosTargets qos;
  qos.max_response_time = 1e9;
  ProvisionerConfig config;
  config.fixed_queue_bound = 2;
  config.initial_service_time_estimate = 0.1;
  World world(qos, config);
  const std::size_t m = 20;
  world.provisioner.scale_to(m);

  const double mu = 10.0;
  const double lambda = 0.85 * mu * static_cast<double>(m);  // rho = 0.85
  PoissonSource source(lambda, std::make_shared<ExponentialDistribution>(mu),
                       0.0, 5000.0);
  Broker broker(world.sim, source, world.provisioner, Rng(77));
  broker.start();
  world.sim.run();

  const double model_rejection =
      queueing::mm1k(lambda / static_cast<double>(m), mu, 2).blocking_probability;
  EXPECT_GT(model_rejection, 0.25);  // the model is pessimistic...
  EXPECT_LT(world.provisioner.rejection_rate(), 0.05);  // ...the system is not
}

TEST(SimulatedPool, ErlangLossSystemMatchesMmck) {
  // m instances with k = 1 behave as M/M/m/m (Erlang loss): global admission
  // sends a request to any idle instance and rejects only when all are busy.
  QosTargets qos;
  qos.max_response_time = 1e9;
  ProvisionerConfig config;
  config.fixed_queue_bound = 1;
  config.initial_service_time_estimate = 0.2;
  World world(qos, config);
  world.provisioner.scale_to(5);

  const double lambda = 20.0;
  const double mu = 5.0;
  PoissonSource source(lambda, std::make_shared<ExponentialDistribution>(mu),
                       0.0, 20000.0);
  Broker broker(world.sim, source, world.provisioner, Rng(31));
  broker.start();
  world.sim.run();

  const auto theory = queueing::mmck(lambda, mu, 5, 5);
  EXPECT_NEAR(world.provisioner.rejection_rate(), theory.blocking_probability,
              0.015);
  // No queueing is possible with k = 1: response time == service time.
  EXPECT_NEAR(world.provisioner.response_time_stats().mean(), 1.0 / mu,
              0.01 / mu);
}

// ----------------------------------------------------------------------
// End-to-end adaptive behavior on miniature scenarios.
// ----------------------------------------------------------------------

TEST(EndToEnd, AdmissionControlPreventsQosViolations) {
  // Paper (Figures 5/6 captions): "Admission control mechanism in place in
  // all scenarios successfully prevented QoS violations." With k = Ts/Tr and
  // bounded demands, no accepted request can exceed Ts.
  QosTargets qos;
  qos.max_response_time = 0.250;
  ProvisionerConfig config;
  config.initial_service_time_estimate = 0.105;
  World world(qos, config);
  world.provisioner.scale_to(3);  // deliberately undersized: heavy rejection

  PoissonSource source(
      60.0, std::make_shared<ScaledUniformDistribution>(0.100, 0.10), 0.0,
      2000.0);
  Broker broker(world.sim, source, world.provisioner, Rng(5));
  broker.start();
  world.sim.run();

  EXPECT_GT(world.provisioner.rejected(), 0u);
  EXPECT_EQ(world.provisioner.qos_violations(), 0u);
  EXPECT_LE(world.provisioner.response_time_stats().max(),
            qos.max_response_time);
}

TEST(EndToEnd, AdaptiveTracksLoadStepUpAndDown) {
  QosTargets qos;
  qos.max_response_time = 0.250;
  qos.min_utilization = 0.8;
  ProvisionerConfig config;
  config.initial_service_time_estimate = 0.105;
  World world(qos, config);

  // Piecewise Poisson via trace: 20 req/s for 600 s, 80 req/s for 600 s,
  // 10 req/s for 600 s.
  WorkloadTrace trace;
  Rng gen(11);
  double t = 0.0;
  auto extend = [&](double rate, double until) {
    while (true) {
      t += gen.exponential(rate);
      if (t >= until) {
        t = until;
        break;
      }
      trace.arrivals.push_back(Arrival{t, 0.1 * gen.uniform(1.0, 1.1)});
    }
  };
  extend(20.0, 600.0);
  extend(80.0, 1200.0);
  extend(10.0, 1800.0);
  TraceSource source(trace, 60.0);

  ModelerConfig modeler;
  modeler.max_vms = 200;
  AnalyzerConfig analyzer;
  analyzer.analysis_interval = 30.0;
  analyzer.lead_time = 30.0;
  AdaptivePolicy policy(world.sim,
                        std::make_shared<OraclePredictor>(source, 0.05), modeler,
                        analyzer);
  Broker broker(world.sim, source, world.provisioner, Rng(12));
  policy.attach(world.provisioner);
  broker.start();
  world.sim.run(1800.0);

  // Pool sizes seen: ~3 at 20 req/s, ~10 at 80 req/s, ~2 at 10 req/s.
  TimeWeightedValue history = world.provisioner.instance_history();
  history.advance(1800.0);
  EXPECT_GE(history.max(), 9.0);
  EXPECT_LE(history.max(), 13.0);
  EXPECT_LE(history.current(), 4.0);  // scaled back down at the end
  EXPECT_LT(world.provisioner.rejection_rate(), 0.02);
  EXPECT_EQ(world.provisioner.qos_violations(), 0u);
}

TEST(EndToEnd, AdaptiveUsesFewerVmHoursThanPeakStatic) {
  // The core economic claim: adaptive ~ matches the QoS of the largest
  // static pool at materially lower VM-hours.
  auto run_policy = [](std::unique_ptr<ProvisioningPolicy> policy,
                       Simulation& sim, World& world) {
    WorkloadTrace trace;
    Rng gen(21);
    double t = 0.0;
    while (t < 1200.0) {
      const double rate = (t < 600.0) ? 10.0 : 60.0;
      t += gen.exponential(rate);
      if (t < 1200.0) trace.arrivals.push_back(Arrival{t, 0.1});
    }
    TraceSource source(trace, 60.0);
    Broker broker(sim, source, world.provisioner, Rng(22));
    policy->attach(world.provisioner);
    broker.start();
    sim.run(1200.0);
    return world.datacenter.vm_hours();
  };

  QosTargets qos;
  qos.max_response_time = 0.3;
  ProvisionerConfig config;
  config.initial_service_time_estimate = 0.1;

  World adaptive_world(qos, config);
  ModelerConfig modeler;
  AnalyzerConfig analyzer_config;
  analyzer_config.analysis_interval = 30.0;
  // EWMA-free: use profile of the known steps.
  auto predictor = std::make_shared<PeriodicProfilePredictor>(
      std::vector<ProfileEntry>{{-1, 0.0, 11.0}, {-1, 570.0, 66.0}}, 1);
  const double adaptive_hours = run_policy(
      std::make_unique<AdaptivePolicy>(adaptive_world.sim, predictor, modeler,
                                       analyzer_config),
      adaptive_world.sim, adaptive_world);

  World static_world(qos, config);
  const double static_hours = run_policy(std::make_unique<StaticPolicy>(9),
                                         static_world.sim, static_world);

  EXPECT_LT(static_world.provisioner.rejection_rate(), 0.01);
  EXPECT_LT(adaptive_world.provisioner.rejection_rate(), 0.01);
  EXPECT_LT(adaptive_hours, 0.8 * static_hours);
}

TEST(EndToEnd, DeterministicAcrossRuns) {
  auto run_once = [] {
    QosTargets qos;
    qos.max_response_time = 0.25;
    ProvisionerConfig config;
    config.initial_service_time_estimate = 0.105;
    World world(qos, config);
    world.provisioner.scale_to(4);
    PoissonSource source(30.0,
                         std::make_shared<ScaledUniformDistribution>(0.1, 0.1),
                         0.0, 500.0);
    Broker broker(world.sim, source, world.provisioner, Rng(123));
    broker.start();
    world.sim.run();
    return std::tuple{world.provisioner.accepted(), world.provisioner.rejected(),
                      world.provisioner.response_time_stats().mean(),
                      world.sim.executed_events()};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace cloudprov
