#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/application_provisioner.h"
#include "core/provisioning_policy.h"

namespace cloudprov {
namespace {

struct Fixture {
  Simulation sim;
  Datacenter datacenter;
  ApplicationProvisioner provisioner;

  explicit Fixture(QosTargets qos = make_qos(), ProvisionerConfig config = make_config(),
                   std::unique_ptr<AdmissionPolicy> admission =
                       std::make_unique<KBoundAdmission>())
      : datacenter(sim, small_dc(), std::make_unique<LeastLoadedPlacement>()),
        provisioner(sim, datacenter, qos, config, std::move(admission)) {}

  static DatacenterConfig small_dc() {
    DatacenterConfig config;
    config.host_count = 4;  // 32 VM slots
    return config;
  }
  static QosTargets make_qos() {
    QosTargets qos;
    qos.max_response_time = 0.250;  // with Tm ~ 0.1 => k = 2
    return qos;
  }
  static ProvisionerConfig make_config() {
    ProvisionerConfig config;
    config.initial_service_time_estimate = 0.1;
    return config;
  }

  Request request(std::uint64_t id, double demand = 0.1) {
    Request r;
    r.id = id;
    r.arrival_time = sim.now();
    r.service_demand = demand;
    return r;
  }
};

TEST(Provisioner, QueueBoundFromEquationOne) {
  Fixture f;
  EXPECT_EQ(f.provisioner.current_queue_bound(), 2u);  // floor(0.25/0.1)
}

TEST(Provisioner, FixedQueueBoundOverrides) {
  ProvisionerConfig config = Fixture::make_config();
  config.fixed_queue_bound = 7;
  Fixture f(Fixture::make_qos(), config);
  EXPECT_EQ(f.provisioner.current_queue_bound(), 7u);
}

TEST(Provisioner, RejectsEverythingWithNoInstances) {
  Fixture f;
  f.provisioner.on_request(f.request(1));
  EXPECT_EQ(f.provisioner.rejected(), 1u);
  EXPECT_EQ(f.provisioner.accepted(), 0u);
}

TEST(Provisioner, RoundRobinSpreadsLoad) {
  Fixture f;
  f.provisioner.scale_to(3);
  // Three requests must land on three distinct instances.
  for (std::uint64_t i = 1; i <= 3; ++i) f.provisioner.on_request(f.request(i));
  std::vector<std::size_t> loads;
  f.provisioner.for_each_instance(
      [&](Vm& vm) { loads.push_back(vm.load()); });
  EXPECT_EQ(loads, (std::vector<std::size_t>{1, 1, 1}));
}

TEST(Provisioner, AdmissionRejectsWhenAllInstancesAtBound) {
  Fixture f;
  f.provisioner.scale_to(2);
  // k = 2, so capacity is 4 concurrent requests.
  for (std::uint64_t i = 1; i <= 4; ++i) f.provisioner.on_request(f.request(i));
  EXPECT_EQ(f.provisioner.accepted(), 4u);
  f.provisioner.on_request(f.request(5));
  EXPECT_EQ(f.provisioner.rejected(), 1u);
  // After one service completes a slot frees up again.
  f.sim.run(0.15);
  f.provisioner.on_request(f.request(6));
  EXPECT_EQ(f.provisioner.accepted(), 5u);
}

TEST(Provisioner, RoundRobinSkipsFullInstances) {
  Fixture f;
  f.provisioner.scale_to(2);
  // Fill instance 1 (the RR cursor moves 1 -> 2 -> 1...).
  f.provisioner.on_request(f.request(1));  // vm A
  f.provisioner.on_request(f.request(2));  // vm B
  f.provisioner.on_request(f.request(3));  // vm A (full now)
  f.provisioner.on_request(f.request(4));  // vm B (full now)
  std::vector<std::size_t> loads;
  f.provisioner.for_each_instance([&](Vm& vm) { loads.push_back(vm.load()); });
  EXPECT_EQ(loads, (std::vector<std::size_t>{2, 2}));
}

TEST(Provisioner, ScaleUpCreatesVmsInDatacenter) {
  Fixture f;
  EXPECT_EQ(f.provisioner.scale_to(5), 5u);
  EXPECT_EQ(f.datacenter.live_vm_count(), 5u);
  EXPECT_EQ(f.provisioner.active_instances(), 5u);
}

TEST(Provisioner, ScaleUpCappedByDatacenterCapacity) {
  Fixture f;
  EXPECT_EQ(f.provisioner.scale_to(100), 32u);  // 4 hosts x 8 cores
  EXPECT_EQ(f.datacenter.live_vm_count(), 32u);
}

TEST(Provisioner, ScaleDownDestroysIdleInstancesImmediately) {
  Fixture f;
  f.provisioner.scale_to(5);
  f.provisioner.scale_to(2);
  EXPECT_EQ(f.provisioner.active_instances(), 2u);
  EXPECT_EQ(f.provisioner.draining_instances(), 0u);  // idle => destroyed now
  EXPECT_EQ(f.datacenter.live_vm_count(), 2u);
}

TEST(Provisioner, ScaleDownDrainsBusyInstances) {
  Fixture f;
  f.provisioner.scale_to(2);
  f.provisioner.on_request(f.request(1, 1.0));
  f.provisioner.on_request(f.request(2, 1.0));
  f.provisioner.scale_to(1);
  // Both instances are busy: one keeps serving as active, one drains.
  EXPECT_EQ(f.provisioner.active_instances(), 1u);
  EXPECT_EQ(f.provisioner.draining_instances(), 1u);
  EXPECT_EQ(f.provisioner.live_instances(), 2u);
  f.sim.run();  // let requests finish
  EXPECT_EQ(f.provisioner.draining_instances(), 0u);
  EXPECT_EQ(f.datacenter.live_vm_count(), 1u);
  EXPECT_EQ(f.provisioner.completed(), 2u);  // drained VM finished its work
}

TEST(Provisioner, DrainingInstanceAcceptsNoNewRequests) {
  Fixture f;
  f.provisioner.scale_to(2);
  f.provisioner.on_request(f.request(1, 1.0));
  f.provisioner.on_request(f.request(2, 1.0));
  f.provisioner.scale_to(1);
  // k = 2: the single active instance has one slot left; next two requests:
  // one accepted there, one rejected (the draining instance must not take it).
  f.provisioner.on_request(f.request(3, 1.0));
  f.provisioner.on_request(f.request(4, 1.0));
  EXPECT_EQ(f.provisioner.accepted(), 3u);
  EXPECT_EQ(f.provisioner.rejected(), 1u);
}

TEST(Provisioner, ScaleUpResurrectsDrainingInstanceBeforeCreating) {
  Fixture f;
  f.provisioner.scale_to(2);
  f.provisioner.on_request(f.request(1, 10.0));
  f.provisioner.on_request(f.request(2, 10.0));
  f.provisioner.scale_to(1);
  EXPECT_EQ(f.provisioner.draining_instances(), 1u);
  const auto created_before = f.datacenter.total_vms_created();
  f.provisioner.scale_to(2);
  // No new VM was created; the draining one was resurrected.
  EXPECT_EQ(f.datacenter.total_vms_created(), created_before);
  EXPECT_EQ(f.provisioner.active_instances(), 2u);
  EXPECT_EQ(f.provisioner.draining_instances(), 0u);
}

TEST(Provisioner, ScaleDownPrefersIdleThenLeastLoaded) {
  Fixture g;
  g.provisioner.scale_to(3);
  g.provisioner.on_request(g.request(1, 5.0));  // vm0
  g.provisioner.on_request(g.request(2, 5.0));  // vm1
  // vm2 idle. Scaling to 2 must destroy the idle instance, keeping both busy
  // ones active.
  g.provisioner.scale_to(2);
  EXPECT_EQ(g.provisioner.draining_instances(), 0u);
  std::size_t busy = 0;
  g.provisioner.for_each_instance([&](Vm& vm) { busy += vm.load(); });
  EXPECT_EQ(busy, 2u);
}

TEST(Provisioner, ResponseStatsAndViolations) {
  QosTargets qos;
  qos.max_response_time = 0.15;  // k = floor(0.15/0.1) = 1: no queueing
  Fixture f(qos);
  f.provisioner.scale_to(1);
  f.provisioner.on_request(f.request(1, 0.1));
  f.sim.run();
  EXPECT_EQ(f.provisioner.completed(), 1u);
  EXPECT_NEAR(f.provisioner.response_time_stats().mean(), 0.1, 1e-12);
  EXPECT_EQ(f.provisioner.qos_violations(), 0u);
  // A demand exceeding Ts is a violation even without queueing.
  f.provisioner.on_request(f.request(2, 0.2));
  f.sim.run();
  EXPECT_EQ(f.provisioner.qos_violations(), 1u);
}

TEST(Provisioner, MonitoredServiceTimeTracksCompletions) {
  Fixture f;
  EXPECT_EQ(f.provisioner.monitored_service_time(), 0.1);  // initial estimate
  f.provisioner.scale_to(1);
  f.provisioner.on_request(f.request(1, 0.2));
  f.sim.run();
  EXPECT_NEAR(f.provisioner.monitored_service_time(), 0.2, 1e-12);
}

TEST(Provisioner, WindowArrivalCounter) {
  Fixture f;
  f.provisioner.scale_to(1);
  for (std::uint64_t i = 1; i <= 5; ++i) f.provisioner.on_request(f.request(i));
  EXPECT_EQ(f.provisioner.take_window_arrivals(), 5u);
  EXPECT_EQ(f.provisioner.take_window_arrivals(), 0u);
}

TEST(Provisioner, InstanceHistoryTracksScaling) {
  Fixture f;
  f.provisioner.scale_to(4);
  f.sim.schedule_at(10.0, [&] { f.provisioner.scale_to(1); });
  f.sim.run(20.0);
  TimeWeightedValue history = f.provisioner.instance_history();
  history.advance(20.0);
  EXPECT_EQ(history.max(), 4.0);
  EXPECT_EQ(history.min(), 1.0);  // history starts at the first scale action
  EXPECT_EQ(history.current(), 1.0);
  EXPECT_NEAR(history.time_average(), (10.0 * 4.0 + 10.0 * 1.0) / 20.0, 1e-9);
}

TEST(Provisioner, SnapshotExposesMonitoringData) {
  Fixture f;
  f.provisioner.scale_to(2);
  f.provisioner.on_request(f.request(1, 0.1));
  f.sim.run(10.0);
  const MonitoringSnapshot snap = f.provisioner.snapshot();
  EXPECT_EQ(snap.time, 10.0);
  EXPECT_EQ(snap.active_instances, 2u);
  EXPECT_EQ(snap.completed_requests, 1u);
  EXPECT_NEAR(snap.mean_service_time, 0.1, 1e-12);
  EXPECT_GT(snap.observed_arrival_rate, 0.0);
}

TEST(StaticPolicy, ProvisionsFixedPool) {
  Fixture f;
  StaticPolicy policy(7);
  policy.attach(f.provisioner);
  EXPECT_EQ(f.provisioner.active_instances(), 7u);
  EXPECT_EQ(policy.name(), "Static-7");
}

TEST(PriorityAdmission, ReservesSlotsForHighPriority) {
  auto admission = std::make_unique<PriorityAwareAdmission>(
      /*reserved_slots=*/2, /*priority_threshold=*/5);
  Fixture f(Fixture::make_qos(), Fixture::make_config(), std::move(admission));
  f.provisioner.scale_to(2);  // 4 slots total
  // Two low-priority requests fill half the pool: 2 slots remain, which is
  // at the reservation threshold -> further low-priority traffic is refused.
  f.provisioner.on_request(f.request(1, 1.0));
  f.provisioner.on_request(f.request(2, 1.0));
  Request low = f.request(3, 1.0);
  low.priority = 0;
  f.provisioner.on_request(low);
  EXPECT_EQ(f.provisioner.rejected(), 1u);
  Request high = f.request(4, 1.0);
  high.priority = 9;
  f.provisioner.on_request(high);
  EXPECT_EQ(f.provisioner.accepted(), 3u);
}

TEST(Provisioner, CapacityCapClampsAndRegrows) {
  Fixture f;
  // Uncapped behavior: desire == commanded.
  f.provisioner.scale_to(6);
  EXPECT_EQ(f.provisioner.active_instances(), 6u);
  EXPECT_EQ(f.provisioner.desired_target(), 6u);
  EXPECT_EQ(f.provisioner.commanded_target(), 6u);
  EXPECT_EQ(f.provisioner.capacity_clips(), 0u);

  // A tighter cap drains the pool down but preserves the raw desire.
  f.provisioner.set_capacity_cap(4);
  EXPECT_EQ(f.provisioner.active_instances(), 4u);
  EXPECT_EQ(f.provisioner.desired_target(), 6u);
  EXPECT_EQ(f.provisioner.commanded_target(), 4u);

  // scale_to above the cap clips (and counts the shortfall)...
  f.provisioner.scale_to(10);
  EXPECT_EQ(f.provisioner.active_instances(), 4u);
  EXPECT_EQ(f.provisioner.desired_target(), 10u);
  EXPECT_EQ(f.provisioner.capacity_clips(), 1u);
  EXPECT_EQ(f.provisioner.capacity_denied(), 6u);

  // ...and raising the cap regrows toward the remembered desire.
  f.provisioner.set_capacity_cap(8);
  EXPECT_EQ(f.provisioner.active_instances(), 8u);
  EXPECT_EQ(f.provisioner.commanded_target(), 8u);
  EXPECT_EQ(f.provisioner.desired_target(), 10u);

  // Below-cap requests pass through unclipped.
  f.provisioner.scale_to(3);
  EXPECT_EQ(f.provisioner.active_instances(), 3u);
  EXPECT_EQ(f.provisioner.capacity_clips(), 1u);
}

TEST(PriorityAdmission, RejectsInfeasibleDeadlines) {
  auto admission = std::make_unique<PriorityAwareAdmission>(0, 0);
  Fixture f(Fixture::make_qos(), Fixture::make_config(), std::move(admission));
  f.provisioner.scale_to(1);
  Request feasible = f.request(1, 0.1);
  feasible.deadline = 0.5;  // ~0.1 s of work, plenty of time
  f.provisioner.on_request(feasible);
  EXPECT_EQ(f.provisioner.accepted(), 1u);
  Request infeasible = f.request(2, 0.1);
  infeasible.deadline = 0.05;  // cannot finish before the deadline
  f.provisioner.on_request(infeasible);
  EXPECT_EQ(f.provisioner.rejected(), 1u);
}

}  // namespace
}  // namespace cloudprov
