// Priority scheduling: Vm-level non-preemptive priority order and its
// analytic counterpart (Cobham's M/G/1 priority formulas), validated against
// each other.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cloud/broker.h"
#include "core/application_provisioner.h"
#include "queueing/priority.h"
#include "stats/running_stats.h"
#include "workload/poisson_source.h"

namespace cloudprov {
namespace {

Request make_request(std::uint64_t id, SimTime t, double demand, int priority) {
  Request r;
  r.id = id;
  r.arrival_time = t;
  r.service_demand = demand;
  r.priority = priority;
  return r;
}

TEST(VmPriorityQueue, HighPriorityJumpsQueue) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{});
  vm.set_priority_queueing(true);
  std::vector<std::uint64_t> completion_order;
  vm.set_completion_callback([&](Vm&, const Request& r, double) {
    completion_order.push_back(r.id);
  });
  vm.submit(make_request(1, 0.0, 1.0, 0));  // starts service (not preempted)
  vm.submit(make_request(2, 0.0, 1.0, 0));
  vm.submit(make_request(3, 0.0, 1.0, 5));  // jumps ahead of 2
  vm.submit(make_request(4, 0.0, 1.0, 9));  // jumps ahead of 3
  vm.submit(make_request(5, 0.0, 1.0, 5));  // FIFO within class: behind 3
  sim.run();
  EXPECT_EQ(completion_order,
            (std::vector<std::uint64_t>{1, 4, 3, 5, 2}));
}

TEST(VmPriorityQueue, FifoByDefault) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{});
  std::vector<std::uint64_t> completion_order;
  vm.set_completion_callback([&](Vm&, const Request& r, double) {
    completion_order.push_back(r.id);
  });
  vm.submit(make_request(1, 0.0, 1.0, 0));
  vm.submit(make_request(2, 0.0, 1.0, 0));
  vm.submit(make_request(3, 0.0, 1.0, 9));
  sim.run();
  EXPECT_EQ(completion_order, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(CobhamFormulas, SingleClassReducesToPollaczekKhinchine) {
  // One class = plain M/G/1: Wq = lambda E[S^2] / (2 (1 - rho)).
  const double lambda = 4.0;
  const double mean = 0.2;
  const double second = 2.0 * mean * mean;  // exponential: E[S^2] = 2 E[S]^2
  const auto metrics =
      queueing::priority_mg1({{lambda, mean, second}});
  ASSERT_EQ(metrics.size(), 1u);
  const double rho = lambda * mean;
  EXPECT_NEAR(metrics[0].mean_waiting, lambda * second / (2.0 * (1.0 - rho)),
              1e-12);
  EXPECT_NEAR(metrics[0].utilization, rho, 1e-12);
}

TEST(CobhamFormulas, HighClassWaitsLess) {
  const queueing::PriorityClassInput cls{2.0, 0.1, 0.02};
  const auto metrics = queueing::priority_mg1({cls, cls, cls});
  EXPECT_LT(metrics[0].mean_waiting, metrics[1].mean_waiting);
  EXPECT_LT(metrics[1].mean_waiting, metrics[2].mean_waiting);
}

TEST(CobhamFormulas, ConservationLaw) {
  // M/G/1 work conservation: sum rho_p Wq_p is invariant under the
  // scheduling order — it must equal the FIFO value rho * Wq(FIFO).
  const std::vector<queueing::PriorityClassInput> classes{
      {3.0, 0.1, 0.02}, {1.0, 0.3, 0.18}};
  const auto metrics = queueing::priority_mg1(classes);
  double weighted = 0.0;
  double w0 = 0.0;
  double rho = 0.0;
  for (std::size_t i = 0; i < classes.size(); ++i) {
    weighted += metrics[i].utilization * metrics[i].mean_waiting;
    w0 += classes[i].arrival_rate * classes[i].service_second_moment / 2.0;
    rho += metrics[i].utilization;
  }
  const double fifo_wq = w0 / (1.0 - rho);
  EXPECT_NEAR(weighted, rho * fifo_wq, 1e-12);
}

TEST(CobhamFormulas, Validation) {
  EXPECT_THROW(queueing::priority_mg1({}), std::invalid_argument);
  EXPECT_THROW(queueing::priority_mg1({{12.0, 0.1, 0.02}}),
               std::invalid_argument);  // rho > 1
  EXPECT_THROW(queueing::priority_mg1({{1.0, 0.1, 0.001}}),
               std::invalid_argument);  // E[S^2] < E[S]^2
}

TEST(SimVsCobham, TwoClassWaitingTimesMatch) {
  // Single instance, deep queue, exponential service, 30% high priority:
  // simulated per-class response must match Cobham.
  Simulation sim;
  DatacenterConfig dc;
  dc.host_count = 1;
  Datacenter datacenter(sim, dc, std::make_unique<LeastLoadedPlacement>());
  QosTargets qos;
  qos.max_response_time = 1e6;
  ProvisionerConfig config;
  config.fixed_queue_bound = 1000000;
  config.initial_service_time_estimate = 0.1;
  config.priority_queueing = true;
  ApplicationProvisioner provisioner(sim, datacenter, qos, config);
  provisioner.scale_to(1);

  RunningStats high_response;
  RunningStats low_response;
  provisioner.set_completion_listener([&](const Request& r, double response) {
    (r.priority > 0 ? high_response : low_response).add(response);
  });

  const double lambda = 8.0;
  const double mu = 10.0;
  Rng rng(51);
  double t = 0.0;
  std::uint64_t id = 0;
  while (t < 40000.0) {
    t += rng.exponential(lambda);
    const int priority = rng.bernoulli(0.3) ? 1 : 0;
    const Request r = make_request(++id, t, rng.exponential(mu), priority);
    sim.schedule_at(t, [&provisioner, r] { provisioner.on_request(r); });
  }
  sim.run();

  const double mean = 1.0 / mu;
  const double second = 2.0 * mean * mean;
  const auto theory = queueing::priority_mg1(
      {{0.3 * lambda, mean, second}, {0.7 * lambda, mean, second}});
  EXPECT_NEAR(high_response.mean(), theory[0].mean_response,
              0.05 * theory[0].mean_response);
  EXPECT_NEAR(low_response.mean(), theory[1].mean_response,
              0.05 * theory[1].mean_response);
  // And the split is dramatic at rho = 0.8: low waits ~5x longer.
  EXPECT_GT(low_response.mean(), 2.5 * high_response.mean());
}

}  // namespace
}  // namespace cloudprov
