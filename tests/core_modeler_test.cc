#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "core/performance_modeler.h"
#include "core/qos.h"
#include "queueing/mm1k.h"

namespace cloudprov {
namespace {

QosTargets web_qos() {
  QosTargets qos;
  qos.max_response_time = 0.250;
  qos.max_rejection_rate = 0.0;
  qos.min_utilization = 0.80;
  return qos;
}

ModelerConfig default_config() {
  ModelerConfig config;
  config.max_vms = 1000;
  config.rejection_tolerance = 0.30;
  return config;
}

TEST(QueueBound, Equation1) {
  EXPECT_EQ(queue_bound(0.250, 0.105), 2u);  // web scenario
  EXPECT_EQ(queue_bound(700.0, 315.0), 2u);  // scientific scenario
  EXPECT_EQ(queue_bound(1.0, 0.1), 10u);
  EXPECT_EQ(queue_bound(0.05, 0.1), 1u);  // clamped to >= 1
  EXPECT_THROW(queue_bound(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(queue_bound(1.0, 0.0), std::invalid_argument);
}

TEST(PerformanceModeler, PaperWebPeakOperatingPoint) {
  // lambda = 1200 req/s, Tm = 105 ms, k = 2: the paper lands at ~153
  // instances (Section V-C1). With the [0.8, ~0.9] offered-load band the
  // decision must fall in [lambda*Tm/0.9, lambda*Tm/0.8] = [140, 158].
  PerformanceModeler modeler(web_qos(), default_config());
  const ModelerDecision d = modeler.required_instances(100, 1200.0, 0.105, 2);
  EXPECT_GE(d.instances, 140u);
  EXPECT_LE(d.instances, 158u);
  EXPECT_LE(d.predicted_response_time, 0.250);
  EXPECT_LE(d.predicted_rejection, 0.30);
}

TEST(PerformanceModeler, PaperWebOffPeakOperatingPoint) {
  // Sunday trough: lambda = 400 -> ~42 erlangs -> m in [47, 53].
  PerformanceModeler modeler(web_qos(), default_config());
  const ModelerDecision d = modeler.required_instances(150, 400.0, 0.105, 2);
  EXPECT_GE(d.instances, 46u);
  EXPECT_LE(d.instances, 55u);
}

TEST(PerformanceModeler, PaperScientificPeakOperatingPoint) {
  // lambda = 0.2129 req/s, Tm = 315 s -> 67 erlangs -> m in [74, 84]
  // (paper: 80 at peak).
  QosTargets qos;
  qos.max_response_time = 700.0;
  qos.min_utilization = 0.80;
  PerformanceModeler modeler(qos, default_config());
  const ModelerDecision d = modeler.required_instances(10, 0.2129, 315.0, 2);
  EXPECT_GE(d.instances, 74u);
  EXPECT_LE(d.instances, 85u);
}

TEST(PerformanceModeler, ConvergenceFromAnyStartingPoint) {
  // Algorithm 1 must reach the same operating band regardless of the seed m.
  PerformanceModeler modeler(web_qos(), default_config());
  for (std::size_t start : {1u, 5u, 50u, 150u, 500u, 1000u}) {
    const ModelerDecision d = modeler.required_instances(start, 1200.0, 0.105, 2);
    EXPECT_GE(d.instances, 140u) << "start=" << start;
    EXPECT_LE(d.instances, 165u) << "start=" << start;
  }
}

TEST(PerformanceModeler, MonotoneInArrivalRate) {
  PerformanceModeler modeler(web_qos(), default_config());
  std::size_t previous = 0;
  for (double lambda : {50.0, 100.0, 200.0, 400.0, 800.0, 1200.0}) {
    const ModelerDecision d = modeler.required_instances(10, lambda, 0.105, 2);
    EXPECT_GE(d.instances, previous) << lambda;
    previous = d.instances;
  }
}

TEST(PerformanceModeler, ZeroRateScalesToMinimum) {
  PerformanceModeler modeler(web_qos(), default_config());
  const ModelerDecision d = modeler.required_instances(50, 0.0, 0.105, 2);
  // The paper's bisection is conservative near the lower bound; it must get
  // within a factor ~2 of the floor and never return 0.
  EXPECT_GE(d.instances, 1u);
  EXPECT_LE(d.instances, 3u);
}

TEST(PerformanceModeler, RespectsMaxVms) {
  ModelerConfig config = default_config();
  config.max_vms = 100;
  PerformanceModeler modeler(web_qos(), config);
  const ModelerDecision d = modeler.required_instances(10, 1200.0, 0.105, 2);
  EXPECT_EQ(d.instances, 100u);  // capacity-capped
  EXPECT_GT(d.predicted_rejection, 0.30);  // and the model knows QoS fails
}

TEST(PerformanceModeler, RespectsMinVms) {
  ModelerConfig config = default_config();
  config.min_vms = 5;
  PerformanceModeler modeler(web_qos(), config);
  const ModelerDecision d = modeler.required_instances(1, 0.1, 0.105, 2);
  EXPECT_GE(d.instances, 5u);
}

TEST(PerformanceModeler, TerminatesWithinIterationCap) {
  PerformanceModeler modeler(web_qos(), default_config());
  for (double lambda : {0.0, 1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    for (std::size_t start : {1u, 100u, 1000u}) {
      const ModelerDecision d = modeler.required_instances(start, lambda, 0.105, 2);
      EXPECT_LT(d.iterations, default_config().max_iterations) << lambda;
      EXPECT_FALSE(d.tested.empty());
    }
  }
}

TEST(PerformanceModeler, RevisitsAreBoundedByMinMaxGuards) {
  // The min/max guards exist to "avoid the system to try a number of
  // virtualized application instances that ... has been tested before".
  // The published algorithm can legally re-test the current upper bound
  // (a growth step clamps to it), but never more than a couple of times,
  // and the search must stay comfortably inside the iteration cap.
  PerformanceModeler modeler(web_qos(), default_config());
  for (std::size_t start : {1u, 7u, 80u, 153u, 400u}) {
    const ModelerDecision d = modeler.required_instances(start, 900.0, 0.105, 2);
    std::map<std::size_t, int> visits;
    for (std::size_t i = 0; i + 1 < d.tested.size(); ++i) ++visits[d.tested[i]];
    for (const auto& [candidate, count] : visits) {
      EXPECT_LE(count, 3) << "m=" << candidate << " from start " << start;
    }
    EXPECT_LE(d.iterations, 30u) << "start=" << start;
  }
}

TEST(PerformanceModeler, GrowthStepIsFiftyPercent) {
  // From a clearly undersized pool the first step must be m + m/2 (line 10).
  PerformanceModeler modeler(web_qos(), default_config());
  const ModelerDecision d = modeler.required_instances(40, 1200.0, 0.105, 2);
  ASSERT_GE(d.tested.size(), 2u);
  EXPECT_EQ(d.tested[0], 40u);
  EXPECT_EQ(d.tested[1], 60u);
}

TEST(PerformanceModeler, PublishedTypoRegression) {
  // Algorithm 1 line 11 as printed ("min <- m + 1" after the increase) would
  // set min to 1.5*oldm + 1, so the bisection could never consider the new
  // candidate range. Our implementation sets min = oldm + 1: from start 40
  // with lambda requiring ~47, the search must be able to return values in
  // (40, 60), which the published pseudocode would skip.
  PerformanceModeler modeler(web_qos(), default_config());
  // lambda * Tm = 40.95 erlangs -> band [45.5, 51.2].
  const ModelerDecision d = modeler.required_instances(40, 390.0, 0.105, 2);
  EXPECT_GT(d.instances, 40u);
  EXPECT_LT(d.instances, 60u);
}

TEST(PerformanceModeler, DecisionLandsInUtilizationBand) {
  // Property over a lambda sweep: whenever neither bound binds, the offered
  // per-instance load of the decision lies in [min_util, rho(tolerance)].
  PerformanceModeler modeler(web_qos(), default_config());
  for (double lambda = 50.0; lambda <= 2000.0; lambda += 37.0) {
    const ModelerDecision d = modeler.required_instances(20, lambda, 0.105, 2);
    const double rho = lambda * 0.105 / static_cast<double>(d.instances);
    EXPECT_GT(rho, 0.70) << lambda;  // not wildly over-provisioned
    EXPECT_LT(rho, 0.95) << lambda;  // not saturated
  }
}

TEST(PerformanceModeler, LargerQueueBoundNeedsFewerInstances) {
  // With a deeper per-instance queue, the same blocking tolerance is met at
  // higher utilization.
  QosTargets qos = web_qos();
  qos.max_response_time = 1.0;  // allow k up to 9
  PerformanceModeler modeler(qos, default_config());
  const ModelerDecision k2 = modeler.required_instances(100, 1000.0, 0.105, 2);
  const ModelerDecision k6 = modeler.required_instances(100, 1000.0, 0.105, 6);
  EXPECT_LE(k6.instances, k2.instances);
}

TEST(PerformanceModeler, ValidatesArguments) {
  PerformanceModeler modeler(web_qos(), default_config());
  EXPECT_THROW(modeler.required_instances(1, -1.0, 0.1, 2), std::invalid_argument);
  EXPECT_THROW(modeler.required_instances(1, 1.0, 0.0, 2), std::invalid_argument);
  EXPECT_THROW(modeler.required_instances(1, 1.0, 0.1, 0), std::invalid_argument);
  ModelerConfig bad = default_config();
  bad.min_vms = 10;
  bad.max_vms = 5;
  EXPECT_THROW(PerformanceModeler(web_qos(), bad), std::invalid_argument);
  bad = default_config();
  bad.rejection_tolerance = 1.5;
  EXPECT_THROW(PerformanceModeler(web_qos(), bad), std::invalid_argument);
}

TEST(PerformanceModeler, PredictionsMatchUnderlyingQueueModel) {
  PerformanceModeler modeler(web_qos(), default_config());
  const ModelerDecision d = modeler.required_instances(10, 500.0, 0.105, 2);
  const auto q = queueing::mm1k(500.0 / static_cast<double>(d.instances),
                                1.0 / 0.105, 2);
  EXPECT_NEAR(d.predicted_rejection, q.blocking_probability, 1e-12);
  EXPECT_NEAR(d.predicted_response_time, q.mean_response_time, 1e-12);
}

}  // namespace
}  // namespace cloudprov
