// Differential fuzz of the slab-backed EventQueue against a transparent
// oracle (std::priority_queue over (time, seq) with a cancelled-token set),
// plus directed regression tests for the cancel() bookkeeping bugs the
// kernel rewrite fixed: double-cancel underflowing size(), cancels of
// already-popped handles, and stale handles aliasing a reused slot.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <random>
#include <unordered_set>
#include <vector>

namespace cloudprov {
namespace {

// --- directed cancel regressions -------------------------------------------

TEST(EventQueueCancel, DoubleCancelDoesNotUnderflowSize) {
  EventQueue queue;
  queue.push(1.0, [] {});
  const EventId id = queue.push(2.0, [] {});
  queue.push(3.0, [] {});
  queue.cancel(id);
  EXPECT_EQ(queue.size(), 2u);
  queue.cancel(id);  // second cancel of the same handle: no-op
  queue.cancel(id);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pop().time, 1.0);
  EXPECT_EQ(queue.pop().time, 3.0);
  EXPECT_TRUE(queue.empty());
  queue.cancel(id);  // cancel on an empty queue: still a no-op
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueCancel, CancelOfPoppedHandleIsNoOp) {
  EventQueue queue;
  const EventId id = queue.push(1.0, [] {});
  queue.push(2.0, [] {});
  EXPECT_EQ(queue.pop().id, id);
  queue.cancel(id);  // already executed
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.pop().time, 2.0);
}

TEST(EventQueueCancel, StaleHandleNeverCancelsSlotReuse) {
  EventQueue queue;
  // Exhaust and recycle the same slot many times; every retired handle must
  // stay dead even though the slot index repeats.
  std::vector<EventId> retired;
  for (int i = 0; i < 100; ++i) {
    const EventId id = queue.push(static_cast<SimTime>(i), [] {});
    for (const EventId old : retired) queue.cancel(old);
    EXPECT_EQ(queue.size(), 1u);
    EXPECT_EQ(queue.pop().id, id);
    retired.push_back(id);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueCancel, InvalidAndOutOfRangeHandlesAreNoOps) {
  EventQueue queue;
  queue.push(1.0, [] {});
  queue.cancel(kInvalidEventId);
  queue.cancel(static_cast<EventId>(1) << 32 | 12345u);  // slot never issued
  EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueueCancel, HeapStaysCompactUnderCancelChurn) {
  // Push/cancel churn with nothing ever popped: the lazy stale entries must
  // not grow the queue's footprint without bound (cancel() compacts when
  // dead records dominate). Observable proxy: size() stays exact and the
  // eventual drain yields exactly the survivors in time order.
  EventQueue queue;
  std::vector<EventId> live;
  for (int i = 0; i < 10000; ++i) {
    live.push_back(queue.push(1000.0 + i, [] {}));
    if (live.size() > 4) {
      queue.cancel(live.front());
      live.erase(live.begin());
    }
  }
  EXPECT_EQ(queue.size(), live.size());
  SimTime last = 0.0;
  while (!queue.empty()) {
    const SimTime t = queue.pop().time;
    EXPECT_GT(t, last);
    last = t;
  }
}

// --- differential fuzz ------------------------------------------------------

struct OracleEntry {
  SimTime time;
  std::uint64_t seq;    // push order: the FIFO tie-break among equal times
  std::uint64_t token;  // identifies the action for cross-checking
};

struct OracleLater {
  bool operator()(const OracleEntry& a, const OracleEntry& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

// One fuzz round: a random interleaving of pushes (with forced equal-time
// ties), cancels (live, stale, and bogus), and pops, checked op-by-op
// against the oracle for size, pop time, and pop identity.
void fuzz_round(std::uint64_t seed) {
  SCOPED_TRACE(testing::Message() << "seed=" << seed);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  EventQueue queue;
  std::priority_queue<OracleEntry, std::vector<OracleEntry>, OracleLater>
      oracle;
  std::unordered_set<std::uint64_t> cancelled;  // tokens cancelled, not popped
  std::vector<std::uint64_t> executed;          // filled by queue actions

  struct Issued {
    EventId id;
    std::uint64_t token;
  };
  std::vector<Issued> issued;  // every handle ever returned (live or not)
  std::unordered_set<std::uint64_t> pending;  // tokens still inside both
  std::uint64_t next_seq = 0;
  std::uint64_t next_token = 0;
  std::vector<SimTime> recent_times;  // pool for forcing equal-time ties

  for (int op = 0; op < 20000; ++op) {
    const double dice = uniform(rng);
    if (dice < 0.45 || queue.empty()) {
      // Push. 30% of the time reuse a recent timestamp to force a tie.
      SimTime t;
      if (!recent_times.empty() && uniform(rng) < 0.3) {
        t = recent_times[rng() % recent_times.size()];
      } else {
        t = uniform(rng) * 1000.0;
        if (recent_times.size() < 32) recent_times.push_back(t);
      }
      const std::uint64_t token = next_token++;
      const EventId id = queue.push(t, [&executed, token] {
        executed.push_back(token);
      });
      oracle.push(OracleEntry{t, next_seq++, token});
      issued.push_back(Issued{id, token});
      pending.insert(token);
    } else if (dice < 0.65 && !issued.empty()) {
      // Cancel a handle drawn from everything ever issued: sometimes live,
      // sometimes already popped or already cancelled (stale), exercising
      // the generation check on slots that have long since been reused.
      const Issued& pick = issued[rng() % issued.size()];
      const bool was_pending = pending.count(pick.token) > 0;
      queue.cancel(pick.id);
      if (was_pending) {
        pending.erase(pick.token);
        cancelled.insert(pick.token);
      }
    } else {
      // Pop and cross-check time + identity against the oracle.
      while (!oracle.empty() && cancelled.count(oracle.top().token) > 0) {
        cancelled.erase(oracle.top().token);
        oracle.pop();
      }
      ASSERT_FALSE(oracle.empty());
      const OracleEntry expected = oracle.top();
      oracle.pop();
      ASSERT_EQ(queue.next_time(), expected.time);
      Event event = queue.pop();
      ASSERT_EQ(event.time, expected.time);
      event.action();
      ASSERT_EQ(executed.back(), expected.token);
      pending.erase(expected.token);
    }
    ASSERT_EQ(queue.size(), pending.size());
    ASSERT_EQ(queue.empty(), pending.empty());
  }

  // Drain both to the end: full sequences must agree.
  while (!queue.empty()) {
    while (!oracle.empty() && cancelled.count(oracle.top().token) > 0) {
      oracle.pop();
    }
    ASSERT_FALSE(oracle.empty());
    Event event = queue.pop();
    ASSERT_EQ(event.time, oracle.top().time);
    event.action();
    ASSERT_EQ(executed.back(), oracle.top().token);
    oracle.pop();
  }
  while (!oracle.empty()) {
    EXPECT_GT(cancelled.count(oracle.top().token), 0u);
    oracle.pop();
  }
}

TEST(EventQueueFuzz, MatchesPriorityQueueOracleAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) fuzz_round(seed);
}

}  // namespace
}  // namespace cloudprov
