// Second-round robustness tests: lifecycle edge cases, monitored-parameter
// drift, boot delays, and additional simulation-vs-theory cross-checks.
#include <gtest/gtest.h>

#include <memory>

#include "cloud/broker.h"
#include "core/application_provisioner.h"
#include <cmath>

#include "queueing/mm1.h"
#include "queueing/mmc.h"
#include "stats/quantile.h"
#include "workload/poisson_source.h"

namespace cloudprov {
namespace {

struct World {
  Simulation sim;
  Datacenter datacenter;

  explicit World(DatacenterConfig config = {})
      : datacenter(sim, config, std::make_unique<LeastLoadedPlacement>()) {}
};

Request make_request(std::uint64_t id, SimTime t, double demand) {
  Request r;
  r.id = id;
  r.arrival_time = t;
  r.service_demand = demand;
  return r;
}

TEST(LifecycleEdge, DrainUndrainDrainCycle) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{});
  int drained = 0;
  vm.set_drained_callback([&](Vm&) { ++drained; });
  vm.submit(make_request(1, 0.0, 1.0));
  vm.drain();
  vm.undrain();
  vm.drain();
  EXPECT_EQ(drained, 0);  // still serving
  sim.run();
  EXPECT_EQ(drained, 1);
  EXPECT_EQ(vm.state(), VmState::kDraining);
}

TEST(LifecycleEdge, FailWhileBootingIsClean) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{}, /*boot_delay=*/10.0);
  const auto lost = vm.fail();
  EXPECT_TRUE(lost.empty());
  EXPECT_EQ(vm.state(), VmState::kDestroyed);
  sim.run();  // the boot event must not resurrect the VM
  EXPECT_EQ(vm.state(), VmState::kDestroyed);
}

TEST(LifecycleEdge, FailIdleVmLosesNothing) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{});
  EXPECT_TRUE(vm.fail().empty());
}

TEST(LifecycleEdge, DestroyedVmRejectsFurtherOperations) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{});
  vm.destroy();
  EXPECT_THROW(vm.submit(make_request(1, 0.0, 1.0)), std::logic_error);
  EXPECT_THROW(vm.drain(), std::logic_error);
  EXPECT_THROW((void)vm.fail(), std::logic_error);
}

TEST(BootDelay, ProvisionerSkipsBootingInstances) {
  DatacenterConfig dc_config;
  dc_config.host_count = 4;
  dc_config.vm_boot_delay = 30.0;
  World world(dc_config);
  QosTargets qos;
  qos.max_response_time = 0.25;
  ProvisionerConfig config;
  config.initial_service_time_estimate = 0.1;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, qos, config);
  provisioner.scale_to(2);
  // Both instances are booting: requests must be rejected, not crash.
  provisioner.on_request(make_request(1, 0.0, 0.1));
  EXPECT_EQ(provisioner.rejected(), 1u);
  // Once booted, dispatch works.
  world.sim.run(31.0);
  provisioner.on_request(make_request(2, 31.0, 0.1));
  EXPECT_EQ(provisioner.accepted(), 1u);
}

TEST(MonitoredDrift, QueueBoundShrinksWhenServiceSlowsDown) {
  World world;
  QosTargets qos;
  qos.max_response_time = 1.0;
  ProvisionerConfig config;
  config.initial_service_time_estimate = 0.1;  // seed k = 10
  ApplicationProvisioner provisioner(world.sim, world.datacenter, qos, config);
  provisioner.scale_to(1);
  EXPECT_EQ(provisioner.current_queue_bound(), 10u);
  // Requests turn out to take 0.5 s: k must drop to floor(1.0/0.5) = 2.
  provisioner.on_request(make_request(1, 0.0, 0.5));
  world.sim.run();
  EXPECT_EQ(provisioner.current_queue_bound(), 2u);
}

TEST(MonitoredDrift, EquationOneGuaranteeUnderDrift) {
  // Even while k adapts, accepted requests never violate Ts when demands are
  // bounded by Ts * k_max safety (here demands ~ U(0.09, 0.11), Ts = 0.25).
  World world;
  QosTargets qos;
  qos.max_response_time = 0.25;
  ProvisionerConfig config;
  config.initial_service_time_estimate = 0.08;  // deliberately wrong seed
  ApplicationProvisioner provisioner(world.sim, world.datacenter, qos, config);
  provisioner.scale_to(3);
  PoissonSource source(25.0, std::make_shared<ScaledUniformDistribution>(0.09,
                                                                         0.22),
                       0.0, 500.0);
  Broker broker(world.sim, source, provisioner, Rng(3));
  broker.start();
  world.sim.run();
  EXPECT_GT(provisioner.completed(), 1000u);
  EXPECT_EQ(provisioner.qos_violations(), 0u);
}

TEST(SimVsTheory, MultiInstanceDeepQueueApproachesMmc) {
  // 4 instances with deep per-instance queues (k = 25) and round-robin
  // dispatch behave close to M/M/4 at moderate load (round-robin splitting
  // is *smoother* than Poisson splitting, so waiting is at or below the
  // M/M/4-with-random-split prediction but above the single shared queue).
  World world;
  QosTargets qos;
  qos.max_response_time = 1e6;
  ProvisionerConfig config;
  config.fixed_queue_bound = 25;
  config.initial_service_time_estimate = 0.1;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, qos, config);
  provisioner.scale_to(4);
  const double lambda = 28.0;  // rho = 0.7
  PoissonSource source(lambda, std::make_shared<ExponentialDistribution>(10.0),
                       0.0, 30000.0);
  Broker broker(world.sim, source, provisioner, Rng(17));
  broker.start();
  world.sim.run();

  const double shared_queue =
      queueing::mmc(lambda, 10.0, 4).mean_response_time;
  const double random_split =
      queueing::mm1(lambda / 4.0, 10.0).mean_response_time;
  const double simulated = provisioner.response_time_stats().mean();
  EXPECT_GT(simulated, shared_queue * 0.98);
  EXPECT_LT(simulated, random_split * 1.02);
  EXPECT_LT(provisioner.rejection_rate(), 1e-3);
}

TEST(SimVsTheory, ResponseTailMatchesMm1Percentile) {
  // M/M/1 response time is exponential with rate mu - lambda; the P2
  // streaming p99 must match the closed-form quantile.
  World world;
  QosTargets qos;
  qos.max_response_time = 1e6;
  ProvisionerConfig config;
  config.fixed_queue_bound = 1000000;
  config.initial_service_time_estimate = 0.1;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, qos, config);
  provisioner.scale_to(1);
  const double lambda = 7.0;
  const double mu = 10.0;
  PoissonSource source(lambda, std::make_shared<ExponentialDistribution>(mu),
                       0.0, 60000.0);
  Broker broker(world.sim, source, provisioner, Rng(23));
  broker.start();
  world.sim.run();
  const double p99_theory = -std::log(0.01) / (mu - lambda);
  EXPECT_NEAR(provisioner.response_p99(), p99_theory, 0.06 * p99_theory);
}

TEST(ScaleToIdempotence, RepeatedCallsAreStable) {
  World world;
  QosTargets qos;
  ProvisionerConfig config;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, qos, config);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(provisioner.scale_to(7), 7u);
  EXPECT_EQ(world.datacenter.total_vms_created(), 7u);  // no churn
  for (int i = 0; i < 5; ++i) EXPECT_EQ(provisioner.scale_to(3), 3u);
  EXPECT_EQ(world.datacenter.live_vm_count(), 3u);
}

TEST(ScaleToZero, DrainsEntirePool) {
  World world;
  QosTargets qos;
  ProvisionerConfig config;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, qos, config);
  provisioner.scale_to(4);
  provisioner.on_request(make_request(1, 0.0, 1.0));
  EXPECT_EQ(provisioner.scale_to(0), 0u);
  EXPECT_EQ(provisioner.draining_instances(), 1u);  // the busy one
  world.sim.run();
  EXPECT_EQ(world.datacenter.live_vm_count(), 0u);
  EXPECT_EQ(provisioner.completed(), 1u);  // drained gracefully, not killed
}

TEST(RoundRobin, CursorSurvivesScaleChanges) {
  // Interleave dispatch and scaling; the provisioner must neither crash nor
  // lose instances, and every accepted request must complete.
  World world;
  QosTargets qos;
  qos.max_response_time = 10.0;
  ProvisionerConfig config;
  config.initial_service_time_estimate = 0.5;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, qos, config);
  Rng rng(31);
  provisioner.scale_to(3);
  std::uint64_t id = 0;
  for (int round = 0; round < 200; ++round) {
    provisioner.scale_to(1 + rng.uniform_int(0, 7));
    for (int j = 0; j < 3; ++j) {
      provisioner.on_request(
          make_request(++id, world.sim.now(), 0.3 * rng.uniform(1.0, 1.1)));
    }
    world.sim.run(world.sim.now() + 0.5);
  }
  world.sim.run();
  EXPECT_EQ(provisioner.completed(), provisioner.accepted());
  EXPECT_EQ(provisioner.qos_violations(), 0u);
}

}  // namespace
}  // namespace cloudprov
