#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <vector>

#include "stats/confidence.h"
#include "stats/histogram.h"
#include "stats/quantile.h"
#include "stats/running_stats.h"
#include "stats/timeseries.h"
#include "util/rng.h"

namespace cloudprov {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats stats;
  const std::vector<double> values{1.0, 2.0, 4.0, 8.0, 16.0};
  for (double v : values) stats.add(v);
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.mean(), 6.2);
  // Sample variance: sum((x - 6.2)^2) / 4 = 37.2
  EXPECT_NEAR(stats.variance(), 37.2, 1e-12);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 16.0);
  EXPECT_NEAR(stats.sum(), 31.0, 1e-12);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  stats.add(3.0);
  EXPECT_EQ(stats.mean(), 3.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.population_variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(8);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(10.0, 3.0);
    whole.add(v);
    (i < 400 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  RunningStats b;
  b.add(1.0);
  b.add(2.0);
  a.merge(b);  // empty.merge(full)
  EXPECT_EQ(a.count(), 2u);
  RunningStats c;
  a.merge(c);  // full.merge(empty)
  EXPECT_EQ(a.count(), 2u);
}

TEST(RunningStats, NumericalStabilityWithLargeOffset) {
  // Welford must not suffer catastrophic cancellation at offset 1e9.
  RunningStats stats;
  for (int i = 0; i < 1000; ++i) stats.add(1e9 + (i % 10));
  EXPECT_NEAR(stats.mean(), 1e9 + 4.5, 1e-3);
  EXPECT_NEAR(stats.variance(), 8.25 * 1000.0 / 999.0, 0.01);
}

TEST(ExactQuantiles, InterpolatedValues) {
  ExactQuantiles q;
  for (int i = 1; i <= 5; ++i) q.add(i);  // 1..5
  EXPECT_DOUBLE_EQ(q.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(q.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(q.quantile(0.125), 1.5);
}

TEST(ExactQuantiles, Validation) {
  ExactQuantiles q;
  EXPECT_THROW(q.quantile(0.5), std::logic_error);
  q.add(1.0);
  EXPECT_THROW(q.quantile(1.5), std::invalid_argument);
}

struct P2Case {
  const char* name;
  double quantile;
  std::function<double(Rng&)> sample;
  std::function<double()> truth;
};

class P2QuantileTest : public ::testing::TestWithParam<P2Case> {};

TEST_P(P2QuantileTest, ConvergesToTrueQuantile) {
  const P2Case& c = GetParam();
  Rng rng(99);
  P2Quantile estimator(c.quantile);
  for (int i = 0; i < 200000; ++i) estimator.add(c.sample(rng));
  const double truth = c.truth();
  EXPECT_NEAR(estimator.value(), truth, 0.03 * std::abs(truth) + 1e-3) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, P2QuantileTest,
    ::testing::Values(
        P2Case{"uniform_median", 0.5, [](Rng& r) { return r.uniform(); },
               [] { return 0.5; }},
        P2Case{"uniform_p95", 0.95, [](Rng& r) { return r.uniform(); },
               [] { return 0.95; }},
        P2Case{"exponential_p90", 0.9, [](Rng& r) { return r.exponential(2.0); },
               [] { return -std::log(0.1) / 2.0; }},
        P2Case{"normal_p99", 0.99, [](Rng& r) { return r.normal(0.0, 1.0); },
               [] { return 2.3263; }}),
    [](const ::testing::TestParamInfo<P2Case>& param_info) { return param_info.param.name; });

TEST(P2Quantile, ExactForFewSamples) {
  P2Quantile q(0.5);
  q.add(3.0);
  EXPECT_EQ(q.value(), 3.0);
  q.add(1.0);
  q.add(2.0);
  EXPECT_EQ(q.value(), 2.0);  // exact median of {1,2,3}
}

TEST(P2Quantile, RejectsDegenerateQuantiles) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
}

TEST(Histogram, LinearBinning) {
  Histogram h = Histogram::linear(0.0, 10.0, 5);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(1.99);   // bin 0
  h.add(2.0);    // bin 1
  h.add(9.99);   // bin 4
  h.add(10.0);   // overflow (half-open)
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_NEAR(h.cumulative_fraction(1), 0.75, 1e-12);
}

TEST(Histogram, LogarithmicBinsSpanDecades) {
  Histogram h = Histogram::logarithmic(1.0, 1000.0, 3);
  EXPECT_NEAR(h.bin_upper(0), 10.0, 1e-9);
  EXPECT_NEAR(h.bin_upper(1), 100.0, 1e-6);
  h.add(5.0);
  h.add(50.0);
  h.add(500.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
}

TEST(Histogram, RenderProducesOneLinePerBin) {
  Histogram h = Histogram::linear(0.0, 2.0, 2);
  h.add(0.5);
  const std::string text = h.render();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST(TimeWeightedValue, IntegralAndAverage) {
  TimeWeightedValue v(0.0, 2.0);
  v.update(10.0, 4.0);   // 2.0 held for 10 s
  v.update(15.0, 0.0);   // 4.0 held for 5 s
  v.advance(20.0);       // 0.0 held for 5 s
  EXPECT_DOUBLE_EQ(v.integral(), 2.0 * 10 + 4.0 * 5);
  EXPECT_DOUBLE_EQ(v.time_average(), 40.0 / 20.0);
  EXPECT_EQ(v.min(), 0.0);
  EXPECT_EQ(v.max(), 4.0);
  EXPECT_EQ(v.observed_duration(), 20.0);
}

TEST(TimeWeightedValue, RejectsTimeTravel) {
  TimeWeightedValue v(5.0, 1.0);
  v.update(6.0, 2.0);
  EXPECT_THROW(v.update(5.5, 3.0), std::invalid_argument);
}

TEST(TimeWeightedValue, EmptyWindowReturnsCurrent) {
  TimeWeightedValue v(0.0, 7.0);
  EXPECT_EQ(v.time_average(), 7.0);
}

TEST(SampledSeries, DownsamplesUniformly) {
  SampledSeries series(3);
  for (int i = 0; i < 10; ++i) series.add(i, i * 2.0);
  EXPECT_EQ(series.seen(), 10u);
  ASSERT_EQ(series.recorded(), 4u);  // indices 0, 3, 6, 9
  EXPECT_EQ(series.points()[1].time, 3.0);
}

TEST(SampledSeries, WindowMean) {
  SampledSeries series;
  series.add(0.0, 1.0);
  series.add(1.0, 2.0);
  series.add(2.0, 3.0);
  EXPECT_DOUBLE_EQ(series.window_mean(0.0, 2.0), 1.5);
  EXPECT_TRUE(std::isnan(series.window_mean(10.0, 20.0)));
}

TEST(NormalQuantile, MatchesKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-8);
  EXPECT_NEAR(normal_quantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.995), 2.575829, 1e-5);
  EXPECT_NEAR(normal_quantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(normal_quantile(0.0001), -3.719016, 1e-4);
}

TEST(StudentT, MatchesTableValues) {
  // Two-sided 95% critical values (p = 0.975).
  EXPECT_NEAR(student_t_quantile(0.975, 1), 12.706, 0.01);
  EXPECT_NEAR(student_t_quantile(0.975, 2), 4.303, 0.005);
  EXPECT_NEAR(student_t_quantile(0.975, 5), 2.571, 0.01);
  EXPECT_NEAR(student_t_quantile(0.975, 9), 2.262, 0.005);
  EXPECT_NEAR(student_t_quantile(0.975, 30), 2.042, 0.003);
  EXPECT_NEAR(student_t_quantile(0.975, 1000), 1.962, 0.002);
}

TEST(StudentT, Validation) {
  EXPECT_THROW(student_t_quantile(0.0, 5), std::invalid_argument);
  EXPECT_THROW(student_t_quantile(0.975, 0), std::invalid_argument);
}

TEST(MeanConfidenceInterval, TenReplications) {
  // The paper's methodology: 10 runs, mean +- t-based CI.
  const std::vector<double> samples{10, 11, 9, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9, 10};
  const auto ci = mean_confidence_interval(samples, 0.95);
  EXPECT_NEAR(ci.mean, 10.0, 0.01);
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_LT(ci.half_width, 0.5);
  EXPECT_LT(ci.lower(), ci.mean);
  EXPECT_GT(ci.upper(), ci.mean);
}

TEST(MeanConfidenceInterval, DegenerateInputs) {
  EXPECT_EQ(mean_confidence_interval({}).half_width, 0.0);
  const auto single = mean_confidence_interval({5.0});
  EXPECT_EQ(single.mean, 5.0);
  EXPECT_EQ(single.half_width, 0.0);
}

TEST(MeanConfidenceInterval, CoverageProperty) {
  // ~95% of CIs built from N(0,1) samples should contain 0.
  Rng rng(4242);
  int covered = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> samples;
    for (int i = 0; i < 10; ++i) samples.push_back(rng.normal(0.0, 1.0));
    const auto ci = mean_confidence_interval(samples, 0.95);
    if (ci.lower() <= 0.0 && 0.0 <= ci.upper()) ++covered;
  }
  EXPECT_NEAR(static_cast<double>(covered) / trials, 0.95, 0.02);
}

}  // namespace
}  // namespace cloudprov
