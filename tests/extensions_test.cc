// Tests for the future-work extensions: multi-tier applications, failure
// injection, pricing models, the hybrid predictor, and the flash-crowd
// overlay.
#include <gtest/gtest.h>

#include <memory>

#include "cloud/broker.h"
#include "core/multitier.h"
#include "fault/fault_injector.h"
#include "market/pricing.h"
#include "predict/ewma.h"
#include "predict/hybrid.h"
#include "predict/periodic_profile.h"
#include "queueing/tandem.h"
#include "workload/poisson_source.h"
#include "workload/spike_overlay.h"

namespace cloudprov {
namespace {

struct World {
  Simulation sim;
  Datacenter datacenter;

  explicit World(std::size_t hosts = 32)
      : datacenter(sim, make_dc(hosts), std::make_unique<LeastLoadedPlacement>()) {}

  static DatacenterConfig make_dc(std::size_t hosts) {
    DatacenterConfig config;
    config.host_count = hosts;
    return config;
  }
};

MultiTierConfig two_tier_config() {
  MultiTierConfig config;
  config.qos.max_response_time = 0.9;  // split 0.6 / 0.3 by the estimates
  config.tiers.push_back(TierConfig{
      "frontend", std::make_shared<DeterministicDistribution>(0.2), 0.2, VmSpec{}});
  config.tiers.push_back(TierConfig{
      "backend", std::make_shared<DeterministicDistribution>(0.1), 0.1, VmSpec{}});
  return config;
}

Request make_request(std::uint64_t id, SimTime t, double demand) {
  Request r;
  r.id = id;
  r.arrival_time = t;
  r.service_demand = demand;
  return r;
}

// ---------------------------------------------------------------- multitier

TEST(MultiTier, BudgetSplitsProportionally) {
  World world;
  MultiTierApplication app(world.sim, world.datacenter, two_tier_config(), Rng(1));
  EXPECT_NEAR(app.tier_budget(0), 0.6, 1e-12);
  EXPECT_NEAR(app.tier_budget(1), 0.3, 1e-12);
  // Tier queue bounds follow the split budgets: k = floor(0.6/0.2) = 3 and
  // floor(0.3/0.1) = 3.
  EXPECT_EQ(app.tier(0).current_queue_bound(), 3u);
  EXPECT_EQ(app.tier(1).current_queue_bound(), 3u);
}

TEST(MultiTier, RequestTraversesAllTiers) {
  World world;
  MultiTierApplication app(world.sim, world.datacenter, two_tier_config(), Rng(2));
  app.tier(0).scale_to(1);
  app.tier(1).scale_to(1);
  app.on_request(make_request(1, 0.0, 0.2));
  world.sim.run();
  EXPECT_EQ(app.completed(), 1u);
  // End-to-end = tier-0 service (0.2) + tier-1 service (0.1).
  EXPECT_NEAR(app.end_to_end_response().mean(), 0.3, 1e-12);
  EXPECT_EQ(app.end_to_end_violations(), 0u);
  EXPECT_EQ(app.tier(0).completed(), 1u);
  EXPECT_EQ(app.tier(1).completed(), 1u);
}

TEST(MultiTier, EntryRejectionWhenTierZeroFull) {
  World world;
  MultiTierApplication app(world.sim, world.datacenter, two_tier_config(), Rng(3));
  app.tier(0).scale_to(1);
  app.tier(1).scale_to(1);
  // k = 3 at tier 0: the 4th concurrent request is rejected at entry.
  for (std::uint64_t i = 1; i <= 4; ++i) {
    app.on_request(make_request(i, 0.0, 0.2));
  }
  EXPECT_EQ(app.rejected_at_entry(), 1u);
  world.sim.run();
  EXPECT_EQ(app.completed(), 3u);
}

TEST(MultiTier, MidChainDropWhenDownstreamFull) {
  World world;
  MultiTierConfig config = two_tier_config();
  // Make the backend the bottleneck: huge service time and k = 1.
  config.tiers[1].service_demand = std::make_shared<DeterministicDistribution>(10.0);
  config.tiers[1].initial_service_time_estimate = 0.1;  // keeps budget split
  MultiTierApplication app(world.sim, world.datacenter, config, Rng(4));
  app.tier(0).scale_to(3);
  app.tier(1).scale_to(1);
  // Three requests clear tier 0 quickly; the backend (k=3, but each takes
  // 10 s > budget) holds 3, so none is dropped yet; push more through.
  for (std::uint64_t i = 1; i <= 6; ++i) {
    app.on_request(make_request(i, 0.0, 0.2));
  }
  world.sim.run(30.0);
  EXPECT_GT(app.dropped_mid_chain(), 0u);
  EXPECT_EQ(app.entered(), 6u);
}

TEST(MultiTier, LossRateCombinesEntryAndMidChain) {
  World world;
  MultiTierApplication app(world.sim, world.datacenter, two_tier_config(), Rng(5));
  // No instances at all: everything rejected at entry.
  app.on_request(make_request(1, 0.0, 0.2));
  app.on_request(make_request(2, 0.0, 0.2));
  EXPECT_EQ(app.end_to_end_loss_rate(), 1.0);
}

TEST(MultiTier, AdaptivePolicySizesHeavyTierLarger) {
  World world(128);
  MultiTierConfig config;
  config.qos.max_response_time = 0.9;
  config.tiers.push_back(TierConfig{
      "frontend", std::make_shared<ScaledUniformDistribution>(0.05, 0.1), 0.0525,
      VmSpec{}});
  config.tiers.push_back(TierConfig{
      "backend", std::make_shared<ScaledUniformDistribution>(0.2, 0.1), 0.21,
      VmSpec{}});
  MultiTierApplication app(world.sim, world.datacenter, config, Rng(6));

  auto predictor = std::make_shared<PeriodicProfilePredictor>(
      std::vector<ProfileEntry>{{-1, 0.0, 40.0}}, 1);
  ModelerConfig modeler;
  modeler.max_vms = 500;
  AnalyzerConfig analyzer;
  analyzer.analysis_interval = 30.0;
  MultiTierAdaptivePolicy policy(world.sim, predictor, modeler, analyzer);
  policy.attach(app);

  PoissonSource source(40.0, std::make_shared<ScaledUniformDistribution>(0.05, 0.1),
                       0.0, 600.0);
  Broker broker(world.sim, source, app, Rng(7));
  broker.start();
  world.sim.run(600.0);

  // Backend needs ~4x the instances of the frontend (service time ratio).
  const double ratio = static_cast<double>(app.tier(1).active_instances()) /
                       static_cast<double>(app.tier(0).active_instances());
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 6.0);
  EXPECT_LT(app.end_to_end_loss_rate(), 0.05);
  EXPECT_EQ(app.end_to_end_violations(), 0u);
  EXPECT_EQ(policy.current_targets().size(), 2u);
}

TEST(MultiTier, SimulationMatchesTandemModel) {
  // Fixed pools, exponential service: the simulated chain must agree with
  // queueing::solve_tandem on acceptance and end-to-end response.
  World world;
  MultiTierConfig config;
  config.qos.max_response_time = 6.0;  // roomy budgets: k ~ 20 per tier
  config.tiers.push_back(TierConfig{
      "a", std::make_shared<ExponentialDistribution>(10.0), 0.1, VmSpec{}});
  config.tiers.push_back(TierConfig{
      "b", std::make_shared<ExponentialDistribution>(5.0), 0.2, VmSpec{}});
  MultiTierApplication app(world.sim, world.datacenter, config, Rng(8));
  app.tier(0).scale_to(2);
  app.tier(1).scale_to(4);
  // Fix the queue bounds so they do not drift with monitored times.
  // (k from budgets: huge Ts => large k; force small k via fresh config.)
  const double lambda = 12.0;
  PoissonSource source(lambda, std::make_shared<ExponentialDistribution>(10.0),
                       0.0, 20000.0);
  Broker broker(world.sim, source, app, Rng(9));
  broker.start();
  world.sim.run();

  const std::size_t k0 = app.tier(0).current_queue_bound();
  const std::size_t k1 = app.tier(1).current_queue_bound();
  const queueing::TandemMetrics model = queueing::solve_tandem(
      lambda, {queueing::TandemTier{2, 10.0, k0}, queueing::TandemTier{4, 5.0, k1}});
  const double simulated_acceptance =
      1.0 - app.end_to_end_loss_rate();
  // The model's independent-split blocking is an upper bound (conservative),
  // so simulated acceptance is at least the model's.
  EXPECT_GE(simulated_acceptance, model.end_to_end_acceptance - 0.02);
  // Response times agree within the decomposition error.
  EXPECT_NEAR(app.end_to_end_response().mean(), model.end_to_end_response,
              0.35 * model.end_to_end_response);
}

// ---------------------------------------------------------------- failures

TEST(Failure, VmFailLosesInFlightWork) {
  Simulation sim;
  Vm vm(sim, 1, VmSpec{});
  vm.submit(make_request(1, 0.0, 5.0));
  vm.submit(make_request(2, 0.0, 5.0));
  sim.run(1.0);
  const auto lost = vm.fail();
  ASSERT_EQ(lost.size(), 2u);
  EXPECT_EQ(vm.state(), VmState::kDestroyed);
  EXPECT_DOUBLE_EQ(vm.busy_seconds(), 1.0);  // partial work counted
  sim.run();  // cancelled completion must not fire
  EXPECT_EQ(vm.completed_requests(), 0u);
}

TEST(Failure, ProvisionerAccountsLostRequests) {
  World world;
  QosTargets qos;
  qos.max_response_time = 10.0;
  ProvisionerConfig config;
  config.initial_service_time_estimate = 1.0;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, qos, config);
  provisioner.scale_to(2);
  provisioner.on_request(make_request(1, 0.0, 5.0));
  provisioner.on_request(make_request(2, 0.0, 5.0));
  const std::size_t lost = provisioner.inject_instance_failure(0);
  EXPECT_EQ(lost, 1u);
  EXPECT_EQ(provisioner.lost_to_failures(), 1u);
  EXPECT_EQ(provisioner.instance_failures(), 1u);
  EXPECT_EQ(provisioner.active_instances(), 1u);
  EXPECT_EQ(world.datacenter.live_vm_count(), 1u);
  // The surviving instance still completes its request.
  world.sim.run();
  EXPECT_EQ(provisioner.completed(), 1u);
}

TEST(Failure, FailedCapacityCanBeReprovisioned) {
  World world(1);  // 8 slots
  QosTargets qos;
  ProvisionerConfig config;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, qos, config);
  provisioner.scale_to(8);
  provisioner.inject_instance_failure(3);
  EXPECT_EQ(provisioner.scale_to(8), 8u);  // host slot was released
}

TEST(Failure, InjectorFailsAtConfiguredRate) {
  World world;
  QosTargets qos;
  ProvisionerConfig config;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, qos, config);
  provisioner.scale_to(10);
  FaultPlan plan;
  plan.vm_mtbf = 1000.0;  // 10 instances -> ~1 failure / 100 s
  FaultInjector injector(world.sim, world.datacenter, provisioner, plan, 11);
  injector.start();
  // Keep the pool at 10 via a reconciler, so the rate stays constant.
  PeriodicProcess reconcile(world.sim, 50.0, 50.0,
                            [&](SimTime) { provisioner.scale_to(10); });
  world.sim.run(20000.0);
  // Expect ~200 failures; allow generous slack.
  EXPECT_GT(injector.vm_crashes(), 140u);
  EXPECT_LT(injector.vm_crashes(), 270u);
  EXPECT_EQ(provisioner.instance_failures(), injector.vm_crashes());
}

TEST(Failure, InjectorSurvivesEmptyPool) {
  World world;
  QosTargets qos;
  ProvisionerConfig config;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, qos, config);
  FaultPlan plan;
  plan.vm_mtbf = 10.0;
  FaultInjector injector(world.sim, world.datacenter, provisioner, plan, 12);
  injector.start();
  world.sim.run(500.0);
  EXPECT_EQ(injector.vm_crashes(), 0u);
}

// ---------------------------------------------------------------- pricing

TEST(Pricing, HourlyQuantumRoundsUp) {
  PricingPolicy hourly;
  hourly.billing_quantum = 3600.0;
  hourly.price_per_hour = 2.0;
  EXPECT_DOUBLE_EQ(billed_cost(1.0, hourly), 2.0);        // 1 s -> 1 h
  EXPECT_DOUBLE_EQ(billed_cost(3600.0, hourly), 2.0);     // exactly 1 h
  EXPECT_DOUBLE_EQ(billed_cost(3661.0, hourly), 4.0);     // 61 min -> 2 h
}

TEST(Pricing, PerSecondWithMinimum) {
  PricingPolicy per_second;
  per_second.billing_quantum = 1.0;
  per_second.minimum_billed = 60.0;
  EXPECT_NEAR(billed_cost(10.0, per_second), 60.0 / 3600.0, 1e-12);
  EXPECT_NEAR(billed_cost(7200.0, per_second), 2.0, 1e-12);
}

TEST(Pricing, ZeroLengthLifetime) {
  // A VM created and destroyed at the same instant bills nothing without a
  // minimum, and exactly the minimum with one.
  PricingPolicy hourly;  // quantum 3600, no minimum
  EXPECT_DOUBLE_EQ(billed_cost(0.0, hourly), 0.0);
  PricingPolicy per_second;
  per_second.billing_quantum = 1.0;
  EXPECT_DOUBLE_EQ(billed_cost(0.0, per_second), 0.0);
  PricingPolicy with_minimum;
  with_minimum.billing_quantum = 1.0;
  with_minimum.minimum_billed = 60.0;
  EXPECT_NEAR(billed_cost(0.0, with_minimum), 60.0 / 3600.0, 1e-12);
}

TEST(Pricing, LifetimeShorterThanMinimumBillsTheMinimum) {
  PricingPolicy policy;
  policy.billing_quantum = 3600.0;
  policy.minimum_billed = 3600.0;
  policy.price_per_hour = 3.0;
  EXPECT_DOUBLE_EQ(billed_cost(10.0, policy), 3.0);    // lifted to 1 h
  EXPECT_DOUBLE_EQ(billed_cost(3600.0, policy), 3.0);  // exactly the minimum
  EXPECT_DOUBLE_EQ(billed_cost(3601.0, policy), 6.0);  // past it: next quantum
}

TEST(Pricing, MinimumNotAMultipleOfTheQuantumRoundsUpFromTheMinimum) {
  // minimum 90 s with a 60 s quantum: the minimum itself is quantized, so
  // the shortest possible bill is 120 s, not 90.
  PricingPolicy policy;
  policy.billing_quantum = 60.0;
  policy.minimum_billed = 90.0;
  EXPECT_NEAR(billed_cost(0.0, policy), 120.0 / 3600.0, 1e-12);
  EXPECT_NEAR(billed_cost(89.0, policy), 120.0 / 3600.0, 1e-12);
  EXPECT_NEAR(billed_cost(100.0, policy), 120.0 / 3600.0, 1e-12);  // < 2 quanta
  EXPECT_NEAR(billed_cost(121.0, policy), 180.0 / 3600.0, 1e-12);
}

TEST(Pricing, RawCostEqualsVmHours) {
  PricingPolicy unit;
  const std::vector<SimTime> lifetimes{3600.0, 1800.0, 900.0};
  EXPECT_NEAR(raw_cost(lifetimes, unit), 1.75, 1e-12);
  // Billed cost under coarse quantum always >= raw cost.
  PricingPolicy hourly;
  hourly.billing_quantum = 3600.0;
  EXPECT_GE(billed_cost(lifetimes, hourly), raw_cost(lifetimes, unit));
  EXPECT_DOUBLE_EQ(billed_cost(lifetimes, hourly), 3.0);
}

TEST(Pricing, Validation) {
  PricingPolicy bad;
  bad.billing_quantum = 0.0;
  EXPECT_THROW(billed_cost(1.0, bad), std::invalid_argument);
  EXPECT_THROW(billed_cost(-1.0, PricingPolicy{}), std::invalid_argument);
}

// ---------------------------------------------------------------- hybrid

TEST(Hybrid, TakesMaxOfComponents) {
  auto profile = std::make_shared<PeriodicProfilePredictor>(
      std::vector<ProfileEntry>{{-1, 0.0, 50.0}}, 1);
  auto reactive = std::make_shared<EwmaPredictor>(1.0, 0.0);
  HybridPredictor hybrid(profile, reactive);
  // Observed load below profile: profile wins.
  hybrid.observe(0.0, 60.0, 20.0);
  EXPECT_NEAR(hybrid.predict(100.0), 50.0, 1e-12);
  // Flash crowd above profile: reactive wins.
  hybrid.observe(60.0, 120.0, 300.0);
  EXPECT_NEAR(hybrid.predict(130.0), 300.0, 1e-12);
}

TEST(Hybrid, FeedsObservationsToBothComponents) {
  auto reactive_a = std::make_shared<EwmaPredictor>(1.0, 0.0);
  auto reactive_b = std::make_shared<EwmaPredictor>(1.0, 0.0);
  HybridPredictor hybrid(reactive_a, reactive_b);
  hybrid.observe(0.0, 60.0, 10.0);
  EXPECT_EQ(reactive_a->current(), 10.0);
  EXPECT_EQ(reactive_b->current(), 10.0);
}

// ---------------------------------------------------------------- spikes

TEST(Spike, OverlayAddsArrivalsOnlyInWindow) {
  auto base = std::make_unique<PoissonSource>(
      5.0, std::make_shared<DeterministicDistribution>(0.1), 0.0, 3000.0);
  SpikeConfig spike;
  spike.start = 1000.0;
  spike.end = 2000.0;
  spike.extra_rate = 20.0;
  spike.service_demand = std::make_shared<DeterministicDistribution>(0.1);
  SpikeOverlaySource source(std::move(base), spike);

  Rng rng(13);
  std::size_t before = 0;
  std::size_t during = 0;
  std::size_t after = 0;
  SimTime last = 0.0;
  while (auto arrival = source.next(rng)) {
    ASSERT_GE(arrival->time, last);  // merged stream stays sorted
    last = arrival->time;
    if (arrival->time < 1000.0) {
      ++before;
    } else if (arrival->time < 2000.0) {
      ++during;
    } else {
      ++after;
    }
  }
  EXPECT_NEAR(static_cast<double>(before), 5000.0, 350.0);
  EXPECT_NEAR(static_cast<double>(during), 25000.0, 800.0);
  EXPECT_NEAR(static_cast<double>(after), 5000.0, 350.0);
}

TEST(Spike, ExpectedRateHidesTheSpike) {
  auto base = std::make_unique<PoissonSource>(
      5.0, std::make_shared<DeterministicDistribution>(0.1), 0.0, 3000.0);
  SpikeConfig spike;
  spike.start = 1000.0;
  spike.end = 2000.0;
  spike.extra_rate = 20.0;
  spike.service_demand = std::make_shared<DeterministicDistribution>(0.1);
  SpikeOverlaySource source(std::move(base), spike);
  EXPECT_EQ(source.expected_rate(1500.0), 5.0);   // model view
  EXPECT_EQ(source.true_rate(1500.0), 25.0);      // reality
  EXPECT_EQ(source.true_rate(500.0), 5.0);
}

}  // namespace
}  // namespace cloudprov
