// Multi-tier application subsystem tests (src/apptier + src/workload Zipf):
//
//   - ZipfWorkload: seeded determinism, Zipf(alpha) skew (alpha = 0
//     degenerates to uniform), hot-key-shift rank rotation, flash-crowd
//     rate multipliers,
//   - CacheTier mechanics against hand-driven pools: look-aside
//     miss -> backend -> fill -> hit, lazy TTL expiry, LRU eviction at
//     directory capacity, modulo-slot invalidation on pool resize, TTL-storm
//     flush, and the windowed hit-ratio EWMA that drives
//     lambda_miss = lambda * (1 - h),
//   - tiered end-to-end runs: the lambda_miss feedback reaches the backend
//     planner and the per-window series is recorded,
//   - snapshot/restore bit-identity of tiered worlds (including a snapshot
//     inside a TTL storm, with the pending chaos events re-armed),
//   - disk checkpoints: the v3 codec round-trips the apptier section and
//     rejects out-of-range versions.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apptier/cache_tier.h"
#include "core/provisioning_policy.h"
#include "experiment/runner.h"
#include "experiment/world.h"
#include "lookahead/checkpoint.h"
#include "lookahead/world_state.h"
#include "util/rng.h"
#include "workload/zipf_workload.h"

namespace cloudprov {
namespace {

// Deterministic RunMetrics fields a tiered run exercises, compared exactly.
// The backend headline fields plus every cache_* field — a restored tier
// that drifts in any counter (or in the RNG-driven response stats) fails.
#define EXPECT_SAME(field) EXPECT_EQ(a.field, b.field) << #field
void expect_identical_tiered(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_SAME(generated);
  EXPECT_SAME(accepted);
  EXPECT_SAME(rejected);
  EXPECT_SAME(completed);
  EXPECT_SAME(qos_violations);
  EXPECT_SAME(avg_response_time);
  EXPECT_SAME(std_response_time);
  EXPECT_SAME(p95_response_time);
  EXPECT_SAME(p99_response_time);
  EXPECT_SAME(min_instances);
  EXPECT_SAME(max_instances);
  EXPECT_SAME(avg_instances);
  EXPECT_SAME(vm_hours);
  EXPECT_SAME(busy_vm_hours);
  EXPECT_SAME(utilization);
  EXPECT_SAME(rejection_rate);
  EXPECT_SAME(final_instances);
  EXPECT_SAME(cache_hits);
  EXPECT_SAME(cache_misses);
  EXPECT_SAME(cache_hit_ratio);
  EXPECT_SAME(cache_fills);
  EXPECT_SAME(cache_evictions);
  EXPECT_SAME(cache_expirations);
  EXPECT_SAME(cache_invalidations);
  EXPECT_SAME(cache_flushes);
  EXPECT_SAME(cache_vm_hours);
  EXPECT_SAME(cache_utilization);
  EXPECT_SAME(cache_avg_instances);
  EXPECT_SAME(cache_final_instances);
  EXPECT_SAME(lambda_miss_mean);
  EXPECT_SAME(cache_avg_response_time);
  EXPECT_SAME(backend_avg_response_time);
  EXPECT_SAME(simulated_events);
}
#undef EXPECT_SAME

// Tiered Zipf smoke: the AB14 sizing section's literals at a 4 h horizon.
ScenarioConfig tiered_config(double scale = 0.02) {
  ScenarioConfig config = zipf_scenario(scale);
  config.horizon = 4.0 * 3600.0;
  config.zipf.horizon = config.horizon;
  config.apptier.enabled = true;
  return config;
}

/// Runs to `snapshot_time`, snapshots, restores into a fresh World, and
/// finishes the run there (the lookahead suite's clone-continue idiom).
RunOutput clone_continue(const ScenarioConfig& config, const PolicySpec& policy,
                         std::uint64_t seed, SimTime snapshot_time) {
  World world(config, policy, seed, std::nullopt);
  world.start();
  world.run_to(snapshot_time);
  const WorldState state = world.snapshot();
  World resumed(config, policy, seed, state);
  resumed.run_to(config.horizon);
  return resumed.finish();
}

// --- ZipfWorkload ----------------------------------------------------------

ZipfWorkloadConfig small_zipf() {
  ZipfWorkloadConfig config;
  config.num_keys = 500;
  config.base_rate = 50.0;
  config.horizon = 600.0;
  return config;
}

TEST(ZipfWorkload, SameSeedSameArrivals) {
  ZipfWorkload a(small_zipf());
  ZipfWorkload b(small_zipf());
  Rng rng_a(42);
  Rng rng_b(42);
  for (int i = 0; i < 200; ++i) {
    const auto arrival_a = a.next(rng_a);
    const auto arrival_b = b.next(rng_b);
    ASSERT_TRUE(arrival_a.has_value());
    ASSERT_TRUE(arrival_b.has_value());
    EXPECT_EQ(arrival_a->time, arrival_b->time);
    EXPECT_EQ(arrival_a->service_demand, arrival_b->service_demand);
    EXPECT_EQ(arrival_a->key, arrival_b->key);
    ASSERT_GE(arrival_a->key, 1u);
    ASSERT_LE(arrival_a->key, 500u);
  }
}

// Count key frequencies over one seeded pass: with alpha = 1.2 the rank-1
// key must dwarf the coldest rank; with alpha = 0 popularity is uniform.
TEST(ZipfWorkload, AlphaControlsSkew) {
  ZipfWorkloadConfig config;
  config.num_keys = 50;
  config.base_rate = 200.0;
  config.horizon = 200.0;
  config.alpha = 1.2;

  const auto histogram = [](ZipfWorkloadConfig cfg) {
    ZipfWorkload workload(cfg);
    Rng rng(7);
    std::vector<std::uint64_t> counts(cfg.num_keys + 1, 0);
    while (const auto arrival = workload.next(rng)) ++counts[arrival->key];
    return counts;
  };

  const std::vector<std::uint64_t> skewed = histogram(config);
  // key_for_rank is the identity with no hot shifts: rank 1 -> key 1.
  EXPECT_GT(skewed[1], 5 * std::max<std::uint64_t>(1, skewed[50]));
  EXPECT_GT(skewed[1], skewed[25]);

  config.alpha = 0.0;
  const std::vector<std::uint64_t> uniform = histogram(config);
  std::uint64_t min_count = uniform[1];
  std::uint64_t max_count = uniform[1];
  for (std::uint64_t key = 1; key <= 50; ++key) {
    min_count = std::min(min_count, uniform[key]);
    max_count = std::max(max_count, uniform[key]);
  }
  EXPECT_GT(min_count, 0u);
  EXPECT_LT(max_count, 2 * min_count);
}

TEST(ZipfWorkload, HotShiftRotatesRanking) {
  ZipfWorkloadConfig config = small_zipf();
  config.num_keys = 9;  // default stride = num_keys / 3 = 3
  config.hot_shift_at = {100.0, 200.0};
  ZipfWorkload workload(config);

  EXPECT_EQ(workload.key_for_rank(1, 50.0), 1u);
  EXPECT_EQ(workload.key_for_rank(1, 100.0), 4u);  // shift boundary inclusive
  EXPECT_EQ(workload.key_for_rank(1, 150.0), 4u);
  EXPECT_EQ(workload.key_for_rank(1, 250.0), 7u);
  EXPECT_EQ(workload.key_for_rank(9, 150.0), 3u);  // wraps around the space

  // An explicit stride overrides the default.
  config.hot_shift_stride = 5;
  ZipfWorkload strided(config);
  EXPECT_EQ(strided.key_for_rank(1, 150.0), 6u);
}

TEST(ZipfWorkload, FlashCrowdMultipliesExpectedRate) {
  ZipfWorkloadConfig config = small_zipf();
  config.base_rate = 100.0;
  config.scale = 0.5;
  config.flash.push_back({10.0, 20.0, 3.0});
  ZipfWorkload workload(config);

  EXPECT_DOUBLE_EQ(workload.expected_rate(5.0), 50.0);
  EXPECT_DOUBLE_EQ(workload.expected_rate(10.0), 150.0);
  EXPECT_DOUBLE_EQ(workload.expected_rate(19.999), 150.0);
  EXPECT_DOUBLE_EQ(workload.expected_rate(20.0), 50.0);  // end exclusive
  EXPECT_DOUBLE_EQ(workload.expected_rate(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(workload.expected_rate(config.horizon), 0.0);
}

// --- CacheTier mechanics ---------------------------------------------------

// Hand-driven tier: one backend pool (also the miss sink) and one cache
// pool, loose QoS so admission never interferes with directory mechanics.
struct TierFixture {
  Simulation sim;
  Datacenter backend_dc;
  ApplicationProvisioner backend;
  Datacenter cache_dc;
  ApplicationProvisioner cache_pool;
  ApptierConfig config;
  CacheTier tier;

  explicit TierFixture(ApptierConfig apptier = make_apptier(),
                       std::size_t cache_vms = 1)
      : backend_dc(sim, small_dc(), std::make_unique<LeastLoadedPlacement>()),
        backend(sim, backend_dc, loose_qos(), pool_config(0.1),
                std::make_unique<KBoundAdmission>()),
        cache_dc(sim, small_dc(), std::make_unique<LeastLoadedPlacement>()),
        cache_pool(sim, cache_dc, loose_qos(),
                   pool_config(apptier.initial_cache_service_estimate),
                   std::make_unique<KBoundAdmission>()),
        config(apptier),
        tier(sim, apptier, loose_qos(), cache_pool, backend, backend, Rng(99),
             nullptr) {
    backend.scale_to(1);
    cache_pool.scale_to(cache_vms);
  }

  static ApptierConfig make_apptier() {
    ApptierConfig config;
    config.enabled = true;
    return config;
  }
  static DatacenterConfig small_dc() {
    DatacenterConfig config;
    config.host_count = 4;
    return config;
  }
  static QosTargets loose_qos() { return QosTargets{10.0, 0.0, 0.5}; }
  static ProvisionerConfig pool_config(double service_estimate) {
    ProvisionerConfig config;
    config.initial_service_time_estimate = service_estimate;
    return config;
  }

  Request request(std::uint64_t id, std::uint64_t key, double demand = 0.1) {
    Request r;
    r.id = id;
    r.arrival_time = sim.now();
    r.service_demand = demand;
    r.key = key;
    return r;
  }
};

TEST(CacheTier, MissFillsOnBackendCompletionThenHits) {
  TierFixture f;
  f.tier.on_request(f.request(1, 7));
  EXPECT_EQ(f.tier.misses(), 1u);
  EXPECT_EQ(f.tier.hits(), 0u);
  // The fill happens when the backend COMPLETES the miss, not at dispatch.
  EXPECT_EQ(f.tier.directory_size(), 0u);
  f.sim.run();
  EXPECT_EQ(f.tier.fills(), 1u);
  EXPECT_EQ(f.tier.directory_size(), 1u);

  f.tier.on_request(f.request(2, 7));
  EXPECT_EQ(f.tier.hits(), 1u);
  f.sim.run();
  EXPECT_DOUBLE_EQ(f.tier.hit_ratio(), 0.5);

  // Keyless requests (key = 0) bypass the directory entirely.
  f.tier.on_request(f.request(3, 0));
  EXPECT_EQ(f.tier.misses(), 2u);
  f.sim.run();
  EXPECT_EQ(f.tier.fills(), 1u);

  // The tier owns end-to-end accounting: all three completions recorded.
  EXPECT_EQ(f.tier.response_time_stats().count(), 3u);
}

TEST(CacheTier, TtlExpiresLazilyAtLookup) {
  ApptierConfig apptier = TierFixture::make_apptier();
  apptier.ttl = 50.0;
  TierFixture f(apptier);

  f.tier.on_request(f.request(1, 7));
  f.sim.run();
  ASSERT_EQ(f.tier.fills(), 1u);

  // Well past the fill's expiry (~ t=0.1 + 50): the resident entry lapses
  // at lookup time, counts as an expiration, and the miss refills.
  f.sim.schedule_at(100.0, [&f] { f.tier.on_request(f.request(2, 7)); });
  f.sim.run();
  EXPECT_EQ(f.tier.expirations(), 1u);
  EXPECT_EQ(f.tier.misses(), 2u);
  EXPECT_EQ(f.tier.fills(), 2u);

  // Within the refreshed TTL: a hit.
  f.sim.schedule_at(120.0, [&f] { f.tier.on_request(f.request(3, 7)); });
  f.sim.run();
  EXPECT_EQ(f.tier.hits(), 1u);
  EXPECT_EQ(f.tier.expirations(), 1u);
}

TEST(CacheTier, LruEvictsColdestAtCapacity) {
  ApptierConfig apptier = TierFixture::make_apptier();
  apptier.cache_capacity_per_vm = 2;  // one cache VM -> capacity 2
  TierFixture f(apptier);
  EXPECT_EQ(f.tier.directory_capacity(), 2u);

  for (std::uint64_t key = 1; key <= 3; ++key) {
    f.tier.on_request(f.request(key, key));
    f.sim.run();
  }
  EXPECT_EQ(f.tier.fills(), 3u);
  EXPECT_EQ(f.tier.evictions(), 1u);
  EXPECT_EQ(f.tier.directory_size(), 2u);

  // Key 1 was the LRU tail when key 3 filled; keys 2 and 3 survive.
  f.tier.on_request(f.request(10, 2));
  f.tier.on_request(f.request(11, 3));
  EXPECT_EQ(f.tier.hits(), 2u);
  f.tier.on_request(f.request(12, 1));
  EXPECT_EQ(f.tier.misses(), 4u);
  f.sim.run();
}

TEST(CacheTier, PoolResizeInvalidatesRemappedSlots) {
  // Two cache VMs: key 3 fills with slot tag 3 % 2 = 1.
  TierFixture f(TierFixture::make_apptier(), 2);
  f.tier.on_request(f.request(1, 3));
  f.sim.run();
  ASSERT_EQ(f.tier.fills(), 1u);

  // Shrinking to one VM remaps every key to slot 0; the resident copy is
  // on the wrong cache VM now and the next lookup misses as an
  // invalidation (not an expiration).
  f.cache_pool.scale_to(1);
  f.sim.run();
  f.tier.on_request(f.request(2, 3));
  EXPECT_EQ(f.tier.invalidations(), 1u);
  EXPECT_EQ(f.tier.expirations(), 0u);
  EXPECT_EQ(f.tier.misses(), 2u);
  f.sim.run();
}

TEST(CacheTier, ScheduledFlushEmptiesDirectory) {
  ApptierConfig apptier = TierFixture::make_apptier();
  apptier.flush_at = {30.0};
  TierFixture f(apptier);
  f.tier.start();  // arms the TTL storm

  f.tier.on_request(f.request(1, 7));
  f.sim.run();  // drains past the flush at t = 30
  EXPECT_EQ(f.tier.flushes(), 1u);
  EXPECT_EQ(f.tier.directory_size(), 0u);

  f.sim.schedule_at(40.0, [&f] { f.tier.on_request(f.request(2, 7)); });
  f.sim.run();
  EXPECT_EQ(f.tier.hits(), 0u);
  EXPECT_EQ(f.tier.misses(), 2u);
}

TEST(CacheTier, WindowFoldDrivesPlanningEwma) {
  TierFixture f;
  // Before any closed window the planner uses the configured assumption.
  EXPECT_DOUBLE_EQ(f.tier.planning_hit_ratio(), f.config.assumed_hit_ratio);
  EXPECT_LT(f.tier.fold_window(), 0.0);  // no lookups yet: EWMA unseeded

  // Window 1: one miss, one hit -> ratio 0.5 seeds the EWMA.
  f.tier.on_request(f.request(1, 7));
  f.sim.run();
  f.tier.on_request(f.request(2, 7));
  f.sim.run();
  EXPECT_EQ(f.tier.take_window_arrivals(), 2u);
  EXPECT_DOUBLE_EQ(f.tier.fold_window(), 0.5);
  EXPECT_DOUBLE_EQ(f.tier.planning_hit_ratio(), 0.5);
  EXPECT_EQ(f.tier.take_window_arrivals(), 0u);

  // Window 2: two hits -> ratio 1.0 folds at alpha = 0.3.
  f.tier.on_request(f.request(3, 7));
  f.tier.on_request(f.request(4, 7));
  f.sim.run();
  const double expected =
      f.config.hit_ewma_alpha * 1.0 + (1.0 - f.config.hit_ewma_alpha) * 0.5;
  EXPECT_DOUBLE_EQ(f.tier.fold_window(), expected);
  EXPECT_DOUBLE_EQ(f.tier.last_window_hit_ratio(), 1.0);
}

// --- tiered end-to-end runs ------------------------------------------------

// The lambda_miss = lambda * (1 - h) feedback: a tiered run absorbs the
// Zipf hot head in the cache, plans the backend for the miss flow only, and
// records the per-window series.
TEST(TieredRun, LambdaMissFeedbackReachesBackendPlanner) {
  const ScenarioConfig config = tiered_config();
  const RunOutput out = run_scenario(config, PolicySpec::adaptive(), 42);
  const RunMetrics& m = out.metrics;

  // Every generated request passed through the look-aside directory.
  EXPECT_EQ(m.cache_hits + m.cache_misses, m.generated);
  EXPECT_GT(m.cache_hit_ratio, 0.3);
  EXPECT_LT(m.cache_hit_ratio, 1.0);
  EXPECT_GT(m.cache_fills, 0u);
  EXPECT_GT(m.cache_vm_hours, 0.0);

  // The backend planner saw a strictly sub-lambda offered load.
  const double total_rate = config.zipf.base_rate * config.scale;
  EXPECT_GT(m.lambda_miss_mean, 0.0);
  EXPECT_LT(m.lambda_miss_mean, total_rate * (1.0 - 0.3));

  // Per-window warmup series: one sample per planning window, each with a
  // sane hit ratio (predictions are 0 only in zero-rate windows, e.g. the
  // one planned exactly at the horizon).
  ASSERT_FALSE(out.apptier_series.empty());
  std::size_t positive_predictions = 0;
  for (const auto& sample : out.apptier_series) {
    EXPECT_GE(sample.hit_ratio, 0.0);
    EXPECT_LE(sample.hit_ratio, 1.0);
    EXPECT_GE(sample.lambda_miss, 0.0);
    EXPECT_GE(sample.predicted_response, 0.0);
    if (sample.predicted_response > 0.0) ++positive_predictions;
  }
  EXPECT_GT(positive_predictions, out.apptier_series.size() / 2);
  EXPECT_FALSE(out.decisions.empty());

  // Per-tier measured latency: cache hits are an order of magnitude
  // cheaper than backend misses.
  EXPECT_GT(m.cache_avg_response_time, 0.0);
  EXPECT_GT(m.backend_avg_response_time, m.cache_avg_response_time);
}

// --- snapshot/restore bit-identity -----------------------------------------

// Snapshot a tiered run with pending chaos (a cache-VM crash and a TTL
// storm) both BEFORE the chaos fires and mid-storm AFTER the flush; the
// restored world must re-arm the pending events and finish bit-identically.
TEST(TieredClone, SnapshotRestoreIsBitIdenticalIncludingMidTtlStorm) {
  ScenarioConfig config = tiered_config();
  config.apptier.cache_crash_at = {5400.0};
  config.apptier.flush_at = {7200.0};

  const RunOutput full = run_scenario(config, PolicySpec::adaptive(), 42);
  ASSERT_EQ(full.metrics.cache_flushes, 1u);
  ASSERT_GT(full.metrics.cache_invalidations, 0u);

  for (const SimTime snapshot_time : {3601.7, 7300.9}) {
    const RunOutput resumed =
        clone_continue(config, PolicySpec::adaptive(), 42, snapshot_time);
    expect_identical_tiered(resumed.metrics, full.metrics);
    ASSERT_EQ(resumed.apptier_series.size(), full.apptier_series.size())
        << "snapshot at " << snapshot_time;
    for (std::size_t i = 0; i < full.apptier_series.size(); ++i) {
      EXPECT_EQ(resumed.apptier_series[i].t, full.apptier_series[i].t);
      EXPECT_EQ(resumed.apptier_series[i].hit_ratio,
                full.apptier_series[i].hit_ratio);
      EXPECT_EQ(resumed.apptier_series[i].lambda_miss,
                full.apptier_series[i].lambda_miss);
      EXPECT_EQ(resumed.apptier_series[i].predicted_response,
                full.apptier_series[i].predicted_response);
    }
    EXPECT_EQ(resumed.decisions.size(), full.decisions.size());
  }
}

// --- disk checkpoints ------------------------------------------------------

// The v3 codec serializes the optional apptier section; a checkpoint of a
// tiered world (with a pending TTL storm) loads and continues bit-identically.
TEST(TieredCheckpoint, DiskRoundtripContinuesBitIdentical) {
  ScenarioConfig config = tiered_config();
  config.apptier.flush_at = {7200.0};
  const RunOutput full = run_scenario(config, PolicySpec::adaptive(), 42);

  World world(config, PolicySpec::adaptive(), 42, std::nullopt);
  world.start();
  world.run_to(5000.5);
  const WorldState state = world.snapshot();
  ASSERT_TRUE(state.apptier.has_value());
  ASSERT_EQ(state.apptier->flush_events.size(), 1u);
  EXPECT_TRUE(state.apptier->flush_events[0].has_value());  // storm pending

  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_checkpoint(buffer, state);
  const WorldState loaded = read_checkpoint(buffer);
  ASSERT_TRUE(loaded.apptier.has_value());
  EXPECT_EQ(loaded.apptier->directory.size(), state.apptier->directory.size());
  EXPECT_EQ(loaded.apptier->hits, state.apptier->hits);
  EXPECT_EQ(loaded.apptier->series.size(), state.apptier->series.size());
  ASSERT_EQ(loaded.apptier->flush_events.size(), 1u);
  EXPECT_TRUE(loaded.apptier->flush_events[0].has_value());

  World resumed(config, PolicySpec::adaptive(), 42, loaded);
  resumed.run_to(config.horizon);
  expect_identical_tiered(resumed.finish().metrics, full.metrics);
}

// Single-tier worlds never carry the section, and the codec rejects
// versions outside [kMinVersion, kVersion] instead of misdecoding.
TEST(TieredCheckpoint, UntieredOmitsApptierAndBadVersionsAreRejected) {
  ScenarioConfig config = web_scenario(0.02);
  config.horizon = 600.0;
  config.web.horizon = config.horizon;
  World world(config, PolicySpec::adaptive(), 3, std::nullopt);
  world.start();
  world.run_to(300.0);
  const WorldState state = world.snapshot();
  EXPECT_FALSE(state.apptier.has_value());

  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_checkpoint(buffer, state);
  const std::string bytes = buffer.str();

  // Sanity: the unpatched buffer loads.
  {
    std::stringstream in(std::ios::in | std::ios::out | std::ios::binary);
    in << bytes;
    EXPECT_FALSE(read_checkpoint(in).apptier.has_value());
  }

  // The version word sits right after the 4-byte magic.
  for (const std::uint32_t bad_version : {0u, 99u}) {
    std::string patched = bytes;
    std::memcpy(patched.data() + 4, &bad_version, sizeof(bad_version));
    std::stringstream in(std::ios::in | std::ios::out | std::ios::binary);
    in << patched;
    EXPECT_THROW(read_checkpoint(in), std::runtime_error)
        << "version " << bad_version;
  }
}

}  // namespace
}  // namespace cloudprov
