#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "stats/running_stats.h"
#include "workload/bot_workload.h"
#include "workload/poisson_source.h"
#include "workload/trace.h"
#include "workload/web_workload.h"

namespace cloudprov {
namespace {

std::vector<Arrival> drain(RequestSource& source, Rng& rng,
                           std::size_t limit = SIZE_MAX) {
  std::vector<Arrival> arrivals;
  while (arrivals.size() < limit) {
    auto a = source.next(rng);
    if (!a) break;
    arrivals.push_back(*a);
  }
  return arrivals;
}

void expect_nondecreasing(const std::vector<Arrival>& arrivals) {
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    ASSERT_LE(arrivals[i - 1].time, arrivals[i].time) << "at index " << i;
  }
}

// ---------------------------------------------------------------- Poisson

TEST(PoissonSource, RateAndHorizonRespected) {
  Rng rng(1);
  PoissonSource source(10.0, std::make_shared<DeterministicDistribution>(0.5),
                       0.0, 1000.0);
  const auto arrivals = drain(source, rng);
  expect_nondecreasing(arrivals);
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 10000.0, 500.0);
  for (const Arrival& a : arrivals) {
    EXPECT_LT(a.time, 1000.0);
    EXPECT_EQ(a.service_demand, 0.5);
  }
}

TEST(PoissonSource, ZeroRateProducesNothing) {
  Rng rng(1);
  PoissonSource source(0.0, std::make_shared<DeterministicDistribution>(1.0));
  EXPECT_FALSE(source.next(rng).has_value());
}

TEST(PoissonSource, InterarrivalsAreExponential) {
  Rng rng(2);
  PoissonSource source(4.0, std::make_shared<DeterministicDistribution>(1.0),
                       0.0, 50000.0);
  RunningStats gaps;
  double last = 0.0;
  while (auto a = source.next(rng)) {
    gaps.add(a->time - last);
    last = a->time;
  }
  EXPECT_NEAR(gaps.mean(), 0.25, 0.005);
  EXPECT_NEAR(gaps.variance(), 0.0625, 0.004);  // exp: var = mean^2
}

// ---------------------------------------------------------------- Web

TEST(WebWorkload, Equation2AtLandmarks) {
  WebWorkload w{};
  // Simulation starts Monday: Rmin 500, Rmax 1000 (Table II).
  EXPECT_NEAR(w.expected_rate(0.0), 500.0, 1e-9);                       // midnight
  EXPECT_NEAR(w.expected_rate(12 * 3600.0), 1000.0, 1e-9);              // noon
  EXPECT_NEAR(w.expected_rate(6 * 3600.0), 500.0 + 500.0 / std::sqrt(2.0),
              1e-6);                                                    // 6 a.m.
}

TEST(WebWorkload, TableTwoDayMapping) {
  WebWorkload w{};
  const double noon = 12 * 3600.0;
  const double day = 86400.0;
  EXPECT_NEAR(w.expected_rate(0 * day + noon), 1000.0, 1e-9);  // Monday
  EXPECT_NEAR(w.expected_rate(1 * day + noon), 1200.0, 1e-9);  // Tuesday
  EXPECT_NEAR(w.expected_rate(4 * day + noon), 1200.0, 1e-9);  // Friday
  EXPECT_NEAR(w.expected_rate(5 * day + noon), 1000.0, 1e-9);  // Saturday
  EXPECT_NEAR(w.expected_rate(6 * day + noon), 900.0, 1e-9);   // Sunday
  EXPECT_NEAR(w.expected_rate(6 * day), 400.0, 1e-9);          // Sunday trough
}

TEST(WebWorkload, RateIsZeroOutsideHorizon) {
  WebWorkload w{};
  EXPECT_EQ(w.expected_rate(-1.0), 0.0);
  EXPECT_EQ(w.expected_rate(7 * 86400.0), 0.0);
}

TEST(WebWorkload, ScaleMultipliesRate) {
  WebWorkloadConfig config;
  config.scale = 0.1;
  WebWorkload w(config);
  EXPECT_NEAR(w.expected_rate(12 * 3600.0), 100.0, 1e-9);
}

TEST(WebWorkload, ArrivalsMatchExpectedCountInWindow) {
  // One hour around Monday noon at 1% scale: expected ~0.01*1000*3600 = 36000?
  // Use a tighter window: rate ~ Rmax near noon.
  WebWorkloadConfig config;
  config.scale = 0.01;
  WebWorkload w(config);
  Rng rng(5);
  std::size_t in_window = 0;
  const double t0 = 11.5 * 3600.0;
  const double t1 = 12.5 * 3600.0;
  while (auto a = w.next(rng)) {
    if (a->time >= t1) break;
    if (a->time >= t0) ++in_window;
  }
  // Mean rate over the hour ~ 9.98 req/s at scale 0.01 => ~35900 arrivals.
  const double expected = 0.01 * 3600.0 * 997.0;
  EXPECT_NEAR(static_cast<double>(in_window), expected, 0.05 * expected);
}

TEST(WebWorkload, ServiceDemandWithinHeterogeneityBand) {
  WebWorkloadConfig config;
  config.scale = 0.001;
  WebWorkload w(config);
  Rng rng(6);
  const auto arrivals = drain(w, rng, 5000);
  ASSERT_GE(arrivals.size(), 1000u);
  for (const Arrival& a : arrivals) {
    EXPECT_GE(a.service_demand, 0.100);
    EXPECT_LE(a.service_demand, 0.110);
  }
}

TEST(WebWorkload, ArrivalsNondecreasingAndWithinHorizon) {
  WebWorkloadConfig config;
  config.scale = 0.001;
  WebWorkload w(config);
  Rng rng(7);
  const auto arrivals = drain(w, rng);
  expect_nondecreasing(arrivals);
  ASSERT_FALSE(arrivals.empty());
  EXPECT_LT(arrivals.back().time, config.horizon);
  // ~0.1% of 500M = ~500k arrivals for the whole week.
  EXPECT_NEAR(static_cast<double>(arrivals.size()), 500e3, 50e3);
}

TEST(WebWorkload, DeterministicForSameSeed) {
  WebWorkloadConfig config;
  config.scale = 0.001;
  WebWorkload a(config);
  WebWorkload b(config);
  Rng rng_a(11);
  Rng rng_b(11);
  for (int i = 0; i < 10000; ++i) {
    const auto x = a.next(rng_a);
    const auto y = b.next(rng_b);
    ASSERT_EQ(x.has_value(), y.has_value());
    if (!x) break;
    ASSERT_EQ(x->time, y->time);
    ASSERT_EQ(x->service_demand, y->service_demand);
  }
}

TEST(WebWorkload, ValidatesConfig) {
  WebWorkloadConfig config;
  config.rate_interval = 0.0;
  EXPECT_THROW(WebWorkload{config}, std::invalid_argument);
  config = {};
  config.scale = -1.0;
  EXPECT_THROW(WebWorkload{config}, std::invalid_argument);
  config = {};
  config.week[0] = {100.0, 200.0};  // max < min
  EXPECT_THROW(WebWorkload{config}, std::invalid_argument);
}

// ---------------------------------------------------------------- BoT

TEST(BotWorkload, PaperModes) {
  BotWorkload w{};
  EXPECT_NEAR(w.interarrival_mode(), 7.379, 0.01);
  EXPECT_NEAR(w.offpeak_count_mode(), 15.298, 0.01);
  EXPECT_NEAR(w.size_mode(), 1.309, 0.01);
}

TEST(BotWorkload, MeanTasksPerJobMatchesNumericalIntegral) {
  BotWorkload w{};
  // Monte-Carlo cross-check of E[max(1, floor(S))].
  Rng rng(13);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    sum += std::max(1.0, std::floor(rng.weibull(1.76, 2.11)));
  }
  EXPECT_NEAR(w.mean_tasks_per_job(), sum / n, 0.01);
}

TEST(BotWorkload, ExpectedRateHigherInPeak) {
  BotWorkload w{};
  const double offpeak = w.expected_rate(3 * 3600.0);
  const double peak = w.expected_rate(12 * 3600.0);
  EXPECT_GT(peak, 5.0 * offpeak);
  // Peak: E[max(1, floor(S))] ~ 1.617 tasks / 7.155 s ~ 0.226 req/s.
  EXPECT_NEAR(peak, 0.226, 0.005);
  // Off-peak: ~21.0 floored jobs * 1.617 tasks / 1800 s ~ 0.0189 req/s.
  EXPECT_NEAR(offpeak, 0.0189, 0.001);
}

TEST(BotWorkload, DailyRequestCountMatchesPaperScale) {
  // The paper reports ~8286 requests/day on average; the realized-task-count
  // model should land in that neighbourhood (see DESIGN.md).
  RunningStats counts;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    BotWorkload w{};
    Rng rng(seed + 100);
    counts.add(static_cast<double>(drain(w, rng).size()));
  }
  EXPECT_NEAR(counts.mean(), 8286.0, 1500.0);
}

TEST(BotWorkload, ArrivalsNondecreasingWithBatches) {
  BotWorkload w{};
  Rng rng(15);
  const auto arrivals = drain(w, rng);
  expect_nondecreasing(arrivals);
  ASSERT_FALSE(arrivals.empty());
  EXPECT_LT(arrivals.back().time, 86400.0);
  // BoT jobs arrive as simultaneous task batches: there must be ties.
  bool has_tie = false;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    if (arrivals[i].time == arrivals[i - 1].time) {
      has_tie = true;
      break;
    }
  }
  EXPECT_TRUE(has_tie);
}

TEST(BotWorkload, PeakWindowDensityHigher) {
  BotWorkload w{};
  Rng rng(16);
  std::size_t peak_count = 0;
  std::size_t offpeak_count = 0;
  for (const Arrival& a : drain(w, rng)) {
    const double tod = a.time;
    if (tod >= 8 * 3600.0 && tod < 17 * 3600.0) {
      ++peak_count;
    } else {
      ++offpeak_count;
    }
  }
  // Peak covers 9 of 24 hours but should carry the large majority of tasks.
  EXPECT_GT(peak_count, 4 * offpeak_count);
}

TEST(BotWorkload, ServiceDemandWithinBand) {
  BotWorkload w{};
  Rng rng(17);
  for (const Arrival& a : drain(w, rng, 2000)) {
    EXPECT_GE(a.service_demand, 300.0);
    EXPECT_LE(a.service_demand, 330.0);
  }
}

TEST(BotWorkload, OffpeakJobsEvenlySpacedWithinWindow) {
  // With the peak disabled (peak window of zero length is invalid; instead
  // look only at the first off-peak window), consecutive distinct arrival
  // times inside one 30-min window are equally spaced.
  BotWorkload w{};
  Rng rng(18);
  std::vector<double> distinct;
  for (const Arrival& a : drain(w, rng, 500)) {
    if (a.time >= 1800.0) break;
    if (distinct.empty() || a.time != distinct.back()) distinct.push_back(a.time);
  }
  ASSERT_GE(distinct.size(), 3u);
  const double gap = distinct[1] - distinct[0];
  for (std::size_t i = 2; i < distinct.size(); ++i) {
    EXPECT_NEAR(distinct[i] - distinct[i - 1], gap, 1e-6);
  }
}

TEST(BotWorkload, ScaleChangesIntensity) {
  BotWorkloadConfig config;
  config.scale = 2.0;
  BotWorkload doubled(config);
  BotWorkload baseline{};
  Rng rng_a(19);
  Rng rng_b(19);
  const auto a = drain(doubled, rng_a).size();
  const auto b = drain(baseline, rng_b).size();
  EXPECT_NEAR(static_cast<double>(a) / static_cast<double>(b), 2.0, 0.3);
}

TEST(BotWorkload, ValidatesConfig) {
  BotWorkloadConfig config;
  config.peak_start = -1.0;
  EXPECT_THROW(BotWorkload{config}, std::invalid_argument);
  config = {};
  config.peak_end = config.peak_start;
  EXPECT_THROW(BotWorkload{config}, std::invalid_argument);
  config = {};
  config.scale = 0.0;
  EXPECT_THROW(BotWorkload{config}, std::invalid_argument);
}

// ---------------------------------------------------------------- Trace

TEST(Trace, RecordAndReplayIdentical) {
  Rng rng(21);
  PoissonSource source(5.0, std::make_shared<ScaledUniformDistribution>(0.1, 0.1),
                       0.0, 100.0);
  WorkloadTrace trace = WorkloadTrace::record(source, rng);
  ASSERT_FALSE(trace.arrivals.empty());

  TraceSource replay(trace);
  Rng unused(0);
  for (const Arrival& original : trace.arrivals) {
    const auto a = replay.next(unused);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->time, original.time);
    EXPECT_EQ(a->service_demand, original.service_demand);
  }
  EXPECT_FALSE(replay.next(unused).has_value());
}

TEST(Trace, CsvRoundTrip) {
  WorkloadTrace trace;
  trace.arrivals.push_back(Arrival{1.5, 0.25, 2, 99.0});
  trace.arrivals.push_back(Arrival{2.75, 0.5});
  std::ostringstream out;
  trace.write_csv(out);
  std::istringstream in(out.str());
  const WorkloadTrace loaded = WorkloadTrace::read_csv(in);
  ASSERT_EQ(loaded.arrivals.size(), 2u);
  EXPECT_EQ(loaded.arrivals[0].time, 1.5);
  EXPECT_EQ(loaded.arrivals[0].service_demand, 0.25);
  EXPECT_EQ(loaded.arrivals[0].priority, 2);
  EXPECT_EQ(loaded.arrivals[0].deadline, 99.0);
  EXPECT_EQ(loaded.arrivals[1].time, 2.75);
  EXPECT_TRUE(std::isinf(loaded.arrivals[1].deadline));
}

TEST(Trace, UnsortedCsvRejected) {
  std::istringstream in("time,service_demand\n5.0,1.0\n1.0,1.0\n");
  EXPECT_THROW(WorkloadTrace::read_csv(in), std::invalid_argument);
}

TEST(TraceSource, ExpectedRateFromWindowCounts) {
  WorkloadTrace trace;
  // 10 arrivals/second for 10 seconds.
  for (int i = 0; i < 100; ++i) {
    trace.arrivals.push_back(Arrival{i * 0.1, 1.0});
  }
  TraceSource source(trace, /*rate_window=*/2.0);
  EXPECT_NEAR(source.expected_rate(5.0), 10.0, 0.6);
  EXPECT_NEAR(source.expected_rate(100.0), 0.0, 1e-9);
}

TEST(TraceSource, RemainingCountsDown) {
  WorkloadTrace trace;
  trace.arrivals.push_back(Arrival{1.0, 1.0});
  trace.arrivals.push_back(Arrival{2.0, 1.0});
  TraceSource source(trace);
  Rng rng(1);
  EXPECT_EQ(source.remaining(), 2u);
  (void)source.next(rng);
  EXPECT_EQ(source.remaining(), 1u);
}

}  // namespace
}  // namespace cloudprov
