#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/runner.h"
#include "sim/simulation.h"
#include "telemetry/export.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace_buffer.h"
#include "util/csv.h"

namespace cloudprov {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser, used to round-trip-validate the Chrome trace export.
// Supports the full value grammar the exporter can emit (objects, arrays,
// strings with escapes, numbers, booleans, null).
struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<Json> array;
  std::map<std::string, Json> object;

  bool has(const std::string& key) const { return object.count(key) > 0; }
  const Json& at(const std::string& key) const { return object.at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Json parse() {
    Json value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("JSON error at offset " + std::to_string(pos_) +
                             ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t n = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Json value;
      value.type = Json::Type::kString;
      value.str = parse_string();
      return value;
    }
    if (consume_literal("true")) {
      Json value;
      value.type = Json::Type::kBool;
      value.boolean = true;
      return value;
    }
    if (consume_literal("false")) {
      Json value;
      value.type = Json::Type::kBool;
      return value;
    }
    if (consume_literal("null")) return Json{};
    return parse_number();
  }

  Json parse_object() {
    Json value;
    value.type = Json::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      value.object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  Json parse_array() {
    Json value;
    value.type = Json::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    for (;;) {
      value.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("bad escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          out += text_.substr(pos_, 4);  // keep raw hex; fidelity not needed
          pos_ += 4;
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    Json value;
    value.type = Json::Type::kNumber;
    value.number = std::stod(text_.substr(start, pos_ - start));
    return value;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics registry.

TEST(MetricsRegistry, CounterAndGaugeSemantics) {
  MetricsRegistry registry;
  Counter& c = registry.counter("hits");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Re-requesting the same name yields the same instrument.
  EXPECT_EQ(&registry.counter("hits"), &c);
  EXPECT_EQ(registry.counter("hits").value(), 42u);

  Gauge& g = registry.gauge("depth");
  g.set(3.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  EXPECT_EQ(&registry.gauge("depth"), &g);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("x", {1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, HistogramBucketSemantics) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);   // <= 1.0
  h.observe(1.0);   // <= 1.0 (upper bound inclusive)
  h.observe(1.5);   // <= 2.0
  h.observe(7.0);   // overflow
  ASSERT_EQ(h.bucket_counts().size(), 4u);
  EXPECT_EQ(h.bucket_counts()[0], 2u);
  EXPECT_EQ(h.bucket_counts()[1], 1u);
  EXPECT_EQ(h.bucket_counts()[2], 0u);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);

  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(MetricsRegistry, DecadeBounds) {
  const std::vector<double> bounds = decade_bounds(1e-3, 1e3);
  ASSERT_FALSE(bounds.empty());
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-3);
  EXPECT_DOUBLE_EQ(bounds.back(), 1e3);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  // 7 decades x {1,2,5} minus the two trailing steps past 1e3.
  EXPECT_EQ(bounds.size(), 19u);
}

TEST(MetricsRegistry, SnapshotAndDelta) {
  MetricsRegistry registry;
  registry.counter("a").add(10);
  registry.counter("b").add(1);
  registry.gauge("g").set(7.0);
  registry.histogram("h", {1.0}).observe(0.5);

  const auto first = registry.snapshot();
  ASSERT_EQ(first.counters.size(), 2u);
  EXPECT_EQ(first.counters[0].name, "a");  // registration order
  EXPECT_EQ(first.counters[0].value, 10u);
  ASSERT_EQ(first.histograms.size(), 1u);
  EXPECT_EQ(first.histograms[0].count, 1u);

  registry.counter("a").add(5);
  registry.gauge("g").set(9.0);
  registry.histogram("h", {1.0}).observe(2.0);
  const auto delta = snapshot_delta(registry.snapshot(), first);
  EXPECT_EQ(delta.counters[0].value, 5u);   // windowed counter
  EXPECT_EQ(delta.counters[1].value, 0u);
  EXPECT_DOUBLE_EQ(delta.gauges[0].value, 9.0);  // gauges keep latest
  EXPECT_EQ(delta.histograms[0].count, 1u);
  EXPECT_EQ(delta.histograms[0].bucket_counts[1], 1u);  // the overflow obs
}

// ---------------------------------------------------------------------------
// Trace ring buffer.

TEST(TraceBuffer, OverflowSetsDropCounterAndKeepsNewest) {
  TraceBuffer buffer(4);
  for (int i = 1; i <= 6; ++i) {
    TraceEvent event;
    event.name = "e";
    event.time = static_cast<SimTime>(i);
    buffer.record(event);
  }
  EXPECT_EQ(buffer.capacity(), 4u);
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.recorded(), 6u);
  EXPECT_EQ(buffer.dropped(), 2u);
  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events.front().time, 3.0);  // oldest retained
  EXPECT_DOUBLE_EQ(events.back().time, 6.0);   // newest

  buffer.clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.dropped(), 0u);
  EXPECT_THROW(TraceBuffer(0), std::invalid_argument);
}

TEST(TraceBuffer, ArgListIsBounded) {
  TraceEvent event;
  for (int i = 0; i < 10; ++i) event.arg("k", static_cast<double>(i));
  EXPECT_EQ(event.arg_count, kMaxTraceArgs);
  EXPECT_DOUBLE_EQ(event.args[kMaxTraceArgs - 1].value,
                   static_cast<double>(kMaxTraceArgs - 1));
}

// ---------------------------------------------------------------------------
// Telemetry facade.

TEST(Telemetry, RequestLifecycleFeedsMetricsAndTrace) {
  Telemetry telemetry(TelemetryOptions{/*trace_capacity=*/1024,
                                       /*trace_requests=*/true});
  telemetry.request_arrival(1.0, 1);
  telemetry.request_admitted(1.0, 1, 7);
  telemetry.request_arrival(1.1, 2);
  telemetry.request_rejected(1.1, 2);
  telemetry.request_completed(1.4, 1, /*response_time=*/0.4,
                              /*service_time=*/0.3, /*qos_violation=*/true);

  const auto snap = telemetry.metrics().snapshot();
  auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& view : snap.counters) {
      if (view.name == name) return view.value;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(counter("requests_arrived"), 2u);
  EXPECT_EQ(counter("requests_admitted"), 1u);
  EXPECT_EQ(counter("requests_rejected"), 1u);
  EXPECT_EQ(counter("requests_completed"), 1u);
  EXPECT_EQ(counter("qos_violations"), 1u);

  // arrival+admit, arrival+reject, request span + service span.
  EXPECT_EQ(telemetry.trace().size(), 6u);
  const auto events = telemetry.trace().events();
  const auto& span = events[4];
  EXPECT_STREQ(span.name, "request");
  EXPECT_EQ(span.phase, TracePhase::kComplete);
  EXPECT_DOUBLE_EQ(span.time, 1.0);       // arrival = finish - response
  EXPECT_DOUBLE_EQ(span.duration, 0.4);
}

TEST(Telemetry, TraceRequestsOffKeepsMetricsOnly) {
  Telemetry telemetry(TelemetryOptions{1024, /*trace_requests=*/false});
  telemetry.request_arrival(1.0, 1);
  telemetry.request_admitted(1.0, 1, 7);
  telemetry.request_completed(1.4, 1, 0.4, 0.3, false);
  telemetry.vm_created(2.0, 1);  // lifecycle events still traced
  EXPECT_EQ(telemetry.trace().size(), 1u);
  const auto snap = telemetry.metrics().snapshot();
  EXPECT_EQ(snap.counters[0].name, "requests_arrived");
  EXPECT_EQ(snap.counters[0].value, 1u);
}

// ---------------------------------------------------------------------------
// Exporters.

TEST(Export, ChromeTraceJsonRoundTrips) {
  Telemetry telemetry(TelemetryOptions{64, true});
  telemetry.request_arrival(0.5, 1);
  telemetry.request_admitted(0.5, 1, 3);
  telemetry.request_completed(0.9, 1, 0.4, 0.3, false);
  telemetry.vm_created(0.0, 3);
  telemetry.instance_count(0.0, 1, 0);
  telemetry.scaling_decision(60.0, 12.5, 0.105, 2, 4, 4);
  telemetry.engine_sample(60.0, 1024, 9);

  std::ostringstream out;
  write_chrome_trace(out, telemetry.trace(), "unit \"test\"");
  const Json doc = JsonParser(out.str()).parse();

  ASSERT_EQ(doc.type, Json::Type::kObject);
  ASSERT_TRUE(doc.has("traceEvents"));
  ASSERT_TRUE(doc.has("otherData"));
  EXPECT_DOUBLE_EQ(doc.at("otherData").at("recorded_events").number,
                   static_cast<double>(telemetry.trace().recorded()));
  EXPECT_DOUBLE_EQ(doc.at("otherData").at("dropped_events").number, 0.0);

  const auto& events = doc.at("traceEvents").array;
  // 9 metadata events (process + 8 named tracks) + recorded events.
  ASSERT_EQ(events.size(), 9u + telemetry.trace().size());
  std::size_t metadata = 0;
  for (const auto& event : events) {
    ASSERT_EQ(event.type, Json::Type::kObject);
    ASSERT_TRUE(event.has("name"));
    ASSERT_TRUE(event.has("ph"));
    ASSERT_TRUE(event.has("pid"));
    const std::string ph = event.at("ph").str;
    if (ph == "M") {
      ++metadata;
      continue;
    }
    EXPECT_TRUE(ph == "i" || ph == "X" || ph == "C") << ph;
    ASSERT_TRUE(event.has("ts"));
    ASSERT_TRUE(event.has("tid"));
    ASSERT_TRUE(event.has("args"));
    if (ph == "X") {
      EXPECT_TRUE(event.has("dur"));
    }
  }
  EXPECT_EQ(metadata, 9u);

  // Span arithmetic survives the microsecond conversion: the request span
  // starts at arrival (0.5 s) and lasts the response time (0.4 s).
  bool found_span = false;
  for (const auto& event : events) {
    if (event.at("ph").str != "X" || event.at("name").str != "request") continue;
    found_span = true;
    EXPECT_DOUBLE_EQ(event.at("ts").number, 0.5e6);
    EXPECT_DOUBLE_EQ(event.at("dur").number, 0.4e6);
    EXPECT_DOUBLE_EQ(event.at("args").at("id").number, 1.0);
  }
  EXPECT_TRUE(found_span);

  // The Algorithm 1 decision carries its inputs.
  bool found_decision = false;
  for (const auto& event : events) {
    if (event.at("name").str != "decision") continue;
    found_decision = true;
    EXPECT_DOUBLE_EQ(event.at("args").at("lambda").number, 12.5);
    EXPECT_DOUBLE_EQ(event.at("args").at("tm").number, 0.105);
    EXPECT_DOUBLE_EQ(event.at("args").at("k").number, 2.0);
    EXPECT_DOUBLE_EQ(event.at("args").at("target_m").number, 4.0);
  }
  EXPECT_TRUE(found_decision);
}

TEST(Export, MetricsCsvRoundTripsThroughReader) {
  Telemetry telemetry;
  telemetry.request_arrival(0.0, 1);
  telemetry.request_admitted(0.0, 1, 1);
  telemetry.request_completed(0.2, 1, 0.2, 0.1, false);
  telemetry.instance_count(0.0, 3, 1);

  std::ostringstream out;
  write_metrics_csv(out, telemetry.metrics().snapshot());
  std::istringstream in(out.str());
  CsvReader reader(in);
  const auto header = reader.next_row();
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(*header,
            (std::vector<std::string>{"metric", "type", "field", "value"}));

  std::map<std::string, std::string> rows;  // "metric/field" -> value
  while (const auto row = reader.next_row()) {
    ASSERT_EQ(row->size(), 4u);
    rows[(*row)[0] + "/" + (*row)[2]] = (*row)[3];
  }
  EXPECT_EQ(rows.at("requests_arrived/value"), "1");
  EXPECT_EQ(rows.at("active_instances/value"), "3");
  EXPECT_EQ(rows.at("response_time_seconds/count"), "1");
  EXPECT_EQ(std::stod(rows.at("response_time_seconds/sum")), 0.2);
  // Cumulative bucket rows: everything <= 1000 s includes our observation.
  EXPECT_EQ(rows.at("response_time_seconds/le_1000"), "1");
}

// ---------------------------------------------------------------------------
// Engine self-profile.

TEST(Telemetry, EngineSamplingRecordsCounterLane) {
  Telemetry telemetry;
  Simulation sim;
  sim.set_telemetry(&telemetry, /*sample_stride=*/8);
  for (int i = 0; i < 40; ++i) {
    sim.schedule_at(static_cast<SimTime>(i), [] {});
  }
  sim.run();
  std::size_t engine_samples = 0;
  for (const auto& event : telemetry.trace().events()) {
    if (std::string(event.category) == "engine") {
      EXPECT_EQ(event.phase, TracePhase::kCounter);
      ++engine_samples;
    }
  }
  EXPECT_EQ(engine_samples, 5u);  // 40 events / stride 8
  EXPECT_THROW(sim.set_telemetry(&telemetry, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Whole-pipeline integration: telemetry must observe, never perturb.

TEST(Telemetry, RunMetricsIdenticalWithTelemetryOnAndOff) {
  const ScenarioConfig config = scientific_scenario(1.0);
  const RunOutput plain =
      run_scenario(config, PolicySpec::adaptive(), 4242);
  // Every observability monitor enabled: span tracing, the drift
  // observatory, and SLO burn-rate alerting must all be purely
  // observational — identical results down to the event count.
  TelemetryOptions opts;
  opts.trace_capacity = 1 << 14;
  opts.span_sample_rate = 0.25;
  opts.drift_enabled = true;
  opts.drift.qos_max_response_time = config.qos.max_response_time;
  opts.slo_enabled = true;
  opts.slo.log_alerts = false;
  const RunOutput traced =
      run_scenario(config, PolicySpec::adaptive(), 4242, opts);

  ASSERT_EQ(plain.telemetry, nullptr);
  ASSERT_NE(traced.telemetry, nullptr);

  const RunMetrics& a = plain.metrics;
  const RunMetrics& b = traced.metrics;
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.qos_violations, b.qos_violations);
  EXPECT_EQ(a.avg_response_time, b.avg_response_time);
  EXPECT_EQ(a.std_response_time, b.std_response_time);
  EXPECT_EQ(a.p95_response_time, b.p95_response_time);
  EXPECT_EQ(a.p99_response_time, b.p99_response_time);
  EXPECT_EQ(a.min_instances, b.min_instances);
  EXPECT_EQ(a.max_instances, b.max_instances);
  EXPECT_EQ(a.avg_instances, b.avg_instances);
  EXPECT_EQ(a.vm_hours, b.vm_hours);
  EXPECT_EQ(a.busy_vm_hours, b.busy_vm_hours);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.rejection_rate, b.rejection_rate);
  EXPECT_EQ(a.simulated_events, b.simulated_events);
  ASSERT_EQ(plain.decisions.size(), traced.decisions.size());

  // The registry agrees with the provisioner's own accounting.
  const auto snap = traced.telemetry->metrics().snapshot();
  auto counter = [&](const std::string& name) -> std::uint64_t {
    for (const auto& view : snap.counters) {
      if (view.name == name) return view.value;
    }
    return ~0ull;
  };
  EXPECT_EQ(counter("requests_admitted"), b.accepted);
  EXPECT_EQ(counter("requests_rejected"), b.rejected);
  EXPECT_EQ(counter("requests_completed"), b.completed);
  EXPECT_EQ(counter("qos_violations"), b.qos_violations);
  EXPECT_EQ(counter("scaling_decisions"), traced.decisions.size());
  EXPECT_GT(traced.telemetry->trace().recorded(), 0u);
}

TEST(Telemetry, WebScenarioTraceExportsValidChromeJson) {
  // The acceptance-criteria path: a (shortened) web run at scale <= 0.01
  // with full tracing, exported and parsed back.
  ScenarioConfig config = web_scenario(0.001);
  config.horizon = 6.0 * 3600.0;
  config.web.horizon = config.horizon;
  TelemetryOptions opts;
  opts.trace_capacity = 1 << 12;
  const RunOutput output =
      run_scenario(config, PolicySpec::adaptive(), 7, opts);
  ASSERT_NE(output.telemetry, nullptr);
  ASSERT_GT(output.telemetry->trace().size(), 0u);

  std::ostringstream out;
  write_chrome_trace(out, output.telemetry->trace());
  const Json doc = JsonParser(out.str()).parse();
  const auto& events = doc.at("traceEvents").array;
  EXPECT_EQ(events.size(), 9u + output.telemetry->trace().size());
  for (const auto& event : events) {
    ASSERT_EQ(event.type, Json::Type::kObject);
    ASSERT_TRUE(event.has("name"));
    ASSERT_TRUE(event.has("ph"));
  }

  // The decision records in RunOutput carry the modeler inputs.
  ASSERT_FALSE(output.decisions.empty());
  EXPECT_GT(output.decisions.front().monitored_service_time, 0.0);
  EXPECT_GT(output.decisions.front().queue_bound, 0u);
}

}  // namespace
}  // namespace cloudprov
