#include <gtest/gtest.h>

#include <cmath>

#include "predict/ar_model.h"
#include "predict/ewma.h"
#include "predict/moving_average.h"
#include "predict/oracle.h"
#include "predict/periodic_profile.h"
#include "predict/qrsm.h"
#include "workload/poisson_source.h"

namespace cloudprov {
namespace {

constexpr double kHour = 3600.0;
constexpr double kDay = 86400.0;

// ------------------------------------------------------------ profiles

TEST(PeriodicProfile, LookupWithinDay) {
  std::vector<ProfileEntry> entries{
      {-1, 0.0, 10.0},
      {-1, 8 * kHour, 50.0},
      {-1, 17 * kHour, 20.0},
  };
  PeriodicProfilePredictor p(std::move(entries), 1);
  EXPECT_EQ(p.predict(1.0), 10.0);
  EXPECT_EQ(p.predict(8 * kHour), 50.0);
  EXPECT_EQ(p.predict(12 * kHour), 50.0);
  EXPECT_EQ(p.predict(17 * kHour), 20.0);
  EXPECT_EQ(p.predict(23 * kHour), 20.0);
  // Next day wraps around.
  EXPECT_EQ(p.predict(kDay + 1.0), 10.0);
}

TEST(PeriodicProfile, PerDayEntriesAndWrapAcrossMidnight) {
  // Day 0 has an evening entry; day 1 has no entry before 6:00, so early
  // day-1 queries must inherit day 0's last entry.
  std::vector<ProfileEntry> entries{
      {0, 0.0, 5.0},
      {0, 20 * kHour, 99.0},
      {1, 6 * kHour, 7.0},
  };
  PeriodicProfilePredictor p(std::move(entries), 2);
  EXPECT_EQ(p.predict(21 * kHour), 99.0);
  EXPECT_EQ(p.predict(kDay + kHour), 99.0);  // day 1, 1:00 -> inherited
  EXPECT_EQ(p.predict(kDay + 7 * kHour), 7.0);
}

TEST(PeriodicProfile, Validation) {
  EXPECT_THROW(PeriodicProfilePredictor({}, 1), std::invalid_argument);
  EXPECT_THROW(PeriodicProfilePredictor({{5, 0.0, 1.0}}, 2),
               std::invalid_argument);
  EXPECT_THROW(PeriodicProfilePredictor({{-1, -5.0, 1.0}}, 1),
               std::invalid_argument);
  EXPECT_THROW(PeriodicProfilePredictor({{-1, 0.0, -1.0}}, 1),
               std::invalid_argument);
}

TEST(WebProfile, SixPeriodsMatchPaperEnvelope) {
  const WebWorkloadConfig config;
  const auto p = web_six_period_profile(config);
  // 6 periods x 7 days.
  EXPECT_EQ(p.entries().size(), 42u);
  // Monday peak period (11:30-12:30) must predict Rmax = 1000.
  EXPECT_NEAR(p.predict(11.6 * kHour), 1000.0, 1.0);
  // Tuesday peak: 1200.
  EXPECT_NEAR(p.predict(kDay + 12 * kHour), 1200.0, 1.0);
  // Increasing morning period 7:00-11:30 predicts the period-end rate
  // (conservative envelope): rate(11:30) on Monday.
  WebWorkload model(config);
  const double expected = model.expected_rate(11.49 * kHour);
  EXPECT_NEAR(p.predict(9 * kHour), expected, 5.0);
  // Envelope property: prediction >= true rate at all times.
  for (double t = 0.0; t < 7 * kDay; t += 600.0) {
    EXPECT_GE(p.predict(t) + 1e-6, model.expected_rate(t)) << t;
  }
}

TEST(WebProfile, FineProfileTracksTheDiurnalCurve) {
  const WebWorkloadConfig config;
  const auto p = web_profile_predictor(config, 1800.0);
  const WebWorkload model(config);
  // 48 windows x 7 days.
  EXPECT_EQ(p.entries().size(), 48u * 7u);
  // Envelope property still holds everywhere...
  for (double t = 0.0; t < 7 * kDay; t += 300.0) {
    EXPECT_GE(p.predict(t) + 1e-6, model.expected_rate(t)) << t;
  }
  // ...but unlike the six-period envelope it tracks the trough: the
  // midnight prediction is near Rmin, which is what lets the pool shrink to
  // the paper's reported minimum of ~55 instances.
  EXPECT_LT(p.predict(10.0), 560.0);                 // Monday midnight
  EXPECT_LT(p.predict(6 * kDay + 10.0), 460.0);      // Sunday midnight
  // Peak windows still predict Rmax.
  EXPECT_NEAR(p.predict(12 * kHour), 1000.0, 5.0);
  // The six-period envelope cannot shrink below ~650.
  const auto coarse = web_six_period_profile(config);
  EXPECT_GT(coarse.predict(10.0), 600.0);
}

TEST(BotProfile, PaperPredictionValues) {
  const BotWorkloadConfig config;
  const auto p = bot_profile_predictor(config);
  // Peak: (1.309 * 1.2) / 7.379 ~ 0.2129 req/s (Section V-B2).
  EXPECT_NEAR(p.predict(12 * kHour), 0.2129, 0.002);
  // Off-peak: (15.298 * 2.6) * (1.309 * 1.2) / 1800 ~ 0.0347 req/s — the
  // estimate that yields the paper's reported minimum of 13 instances.
  EXPECT_NEAR(p.predict(3 * kHour), 0.0347, 0.0008);
  EXPECT_NEAR(p.predict(20 * kHour), 0.0347, 0.0008);
}

TEST(BotProfile, EstimateQualityAgainstRealizedRate) {
  // Off-peak, the x2.6 inflated mode over-estimates the realized mean rate
  // (the paper's deliberate safety margin). At peak, the inflated mode-based
  // rate (0.2129) sits ~6% *below* the realized mean (0.226) because the
  // Weibull means exceed the modes; the paper's own numbers (80 peak VMs at
  // ~0.89 per-instance load, zero rejection) reflect exactly this operating
  // point — the multi-instance admission control absorbs the gap.
  const BotWorkloadConfig config;
  const BotWorkload model(config);
  const auto p = bot_profile_predictor(config);
  EXPECT_GT(p.predict(3 * kHour), model.expected_rate(3 * kHour));
  EXPECT_NEAR(p.predict(12 * kHour) / model.expected_rate(12 * kHour), 0.94,
              0.05);
}

// ------------------------------------------------------------ history-based

TEST(Ewma, ConvergesToConstantSignal) {
  EwmaPredictor p(0.5, 0.0);
  for (int i = 0; i < 50; ++i) p.observe(i, i + 1.0, 40.0);
  EXPECT_NEAR(p.predict(100.0), 40.0, 1e-6);
}

TEST(Ewma, FirstObservationPrimes) {
  EwmaPredictor p(0.1, 0.0);
  p.observe(0, 1, 100.0);
  EXPECT_EQ(p.predict(2.0), 100.0);
}

TEST(Ewma, HeadroomInflates) {
  EwmaPredictor p(1.0, 0.2);
  p.observe(0, 1, 50.0);
  EXPECT_NEAR(p.predict(2.0), 60.0, 1e-9);
}

TEST(Ewma, LagsBehindStep) {
  EwmaPredictor p(0.3, 0.0);
  for (int i = 0; i < 10; ++i) p.observe(i, i + 1.0, 10.0);
  p.observe(10, 11, 100.0);
  const double after_one = p.predict(12.0);
  EXPECT_GT(after_one, 10.0);
  EXPECT_LT(after_one, 50.0);  // has not caught up yet
}

TEST(Ewma, Validation) {
  EXPECT_THROW(EwmaPredictor(0.0), std::invalid_argument);
  EXPECT_THROW(EwmaPredictor(1.5), std::invalid_argument);
  EXPECT_THROW(EwmaPredictor(0.5, -0.1), std::invalid_argument);
}

TEST(MovingAverage, MeanAndMaxModes) {
  MovingAveragePredictor mean_p(3, MovingAveragePredictor::Mode::kMean, 0.0);
  MovingAveragePredictor max_p(3, MovingAveragePredictor::Mode::kMax, 0.0);
  for (double v : {10.0, 20.0, 60.0}) {
    mean_p.observe(0, 1, v);
    max_p.observe(0, 1, v);
  }
  EXPECT_NEAR(mean_p.predict(0), 30.0, 1e-9);
  EXPECT_NEAR(max_p.predict(0), 60.0, 1e-9);
  // Window slides: oldest (10) drops out.
  mean_p.observe(0, 1, 30.0);
  EXPECT_NEAR(mean_p.predict(0), (20.0 + 60.0 + 30.0) / 3.0, 1e-9);
}

TEST(MovingAverage, EmptyPredictsZero) {
  MovingAveragePredictor p(5);
  EXPECT_EQ(p.predict(0), 0.0);
}

TEST(ArPredictor, LearnsLinearTrend) {
  // x_t = 5 + t is AR(1): x_t = x_{t-1} + 1 exactly.
  ArPredictor p(1, 30, 0.0);
  for (int t = 0; t < 25; ++t) p.observe(t, t + 1.0, 5.0 + t);
  // Next value should be ~30.
  EXPECT_NEAR(p.predict(25.0), 30.0, 0.2);
}

TEST(ArPredictor, LearnsSinusoid) {
  // A sinusoid satisfies an exact AR(2) recurrence.
  ArPredictor p(2, 100, 0.0);
  const double omega = 2.0 * M_PI / 24.0;
  int t = 0;
  for (; t < 80; ++t) p.observe(t, t + 1.0, 100.0 + 50.0 * std::sin(omega * t));
  const double truth = 100.0 + 50.0 * std::sin(omega * t);
  EXPECT_NEAR(p.predict(t), truth, 1.0);
}

TEST(ArPredictor, ColdStartFallsBackToLastObservation) {
  ArPredictor p(4, 60, 0.0);
  p.observe(0, 1, 33.0);
  EXPECT_NEAR(p.predict(2.0), 33.0, 1e-9);
}

TEST(ArPredictor, NeverPredictsNegative) {
  ArPredictor p(2, 30, 0.0);
  for (int t = 0; t < 20; ++t) p.observe(t, t + 1.0, std::max(0.0, 100.0 - 10.0 * t));
  EXPECT_GE(p.predict(20.0), 0.0);
}

TEST(SolveLinearSystem, KnownSolution) {
  // 2x + y = 5; x - y = 1 -> x = 2, y = 1.
  const auto x = solve_linear_system({{2.0, 1.0}, {1.0, -1.0}}, {5.0, 1.0});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(SolveLinearSystem, PivotingHandlesZeroDiagonal) {
  // Leading zero forces a row swap.
  const auto x = solve_linear_system({{0.0, 1.0}, {1.0, 0.0}}, {3.0, 4.0});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(SolveLinearSystem, SingularThrows) {
  EXPECT_THROW(solve_linear_system({{1.0, 2.0}, {2.0, 4.0}}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(solve_linear_system({{1.0}}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Qrsm, FitsQuadraticExactly) {
  // rate(t) = 2 + 3t + 0.5 t^2 observed over unit windows.
  QrsmPredictor p(10, 0.0);
  auto truth = [](double t) { return 2.0 + 3.0 * t + 0.5 * t * t; };
  for (int t = 0; t < 8; ++t) {
    p.observe(t, t + 1.0, truth(t + 0.5));
  }
  EXPECT_NEAR(p.predict(9.5), truth(9.5), 0.05);
}

TEST(Qrsm, ClampsNegativeExtrapolation) {
  QrsmPredictor p(10, 0.0);
  for (int t = 0; t < 6; ++t) p.observe(t, t + 1.0, 50.0 - 10.0 * t);
  EXPECT_GE(p.predict(20.0), 0.0);
}

TEST(Qrsm, FallbackBeforeThreeObservations) {
  QrsmPredictor p(10, 0.0);
  p.observe(0, 1, 42.0);
  EXPECT_NEAR(p.predict(5.0), 42.0, 1e-9);
}

TEST(Oracle, ReadsGroundTruthWithMargin) {
  PoissonSource source(10.0, std::make_shared<DeterministicDistribution>(1.0),
                       0.0, 100.0);
  OraclePredictor p(source, 0.1);
  EXPECT_NEAR(p.predict(50.0), 11.0, 1e-9);
  EXPECT_EQ(p.predict(200.0), 0.0);  // beyond horizon
}

}  // namespace
}  // namespace cloudprov
