#include <gtest/gtest.h>

#include <sstream>

#include "experiment/metrics.h"
#include "experiment/report.h"
#include "experiment/runner.h"
#include "experiment/scenario.h"
#include "util/csv.h"

namespace cloudprov {
namespace {

TEST(Scenario, WebFactoryMatchesPaperSetup) {
  const ScenarioConfig config = web_scenario(1.0);
  EXPECT_EQ(config.workload, WorkloadKind::kWeb);
  EXPECT_EQ(config.horizon, 7.0 * 86400.0);
  EXPECT_EQ(config.qos.max_response_time, 0.250);
  EXPECT_EQ(config.qos.min_utilization, 0.80);
  EXPECT_NEAR(config.initial_service_time_estimate, 0.105, 1e-12);
  EXPECT_EQ(config.datacenter.host_count, 1000u);
  EXPECT_EQ(config.web.week[0].max, 1000.0);  // Monday (Table II)
  EXPECT_EQ(config.web.week[6].min, 400.0);   // Sunday
}

TEST(Scenario, ScientificFactoryMatchesPaperSetup) {
  const ScenarioConfig config = scientific_scenario(1.0);
  EXPECT_EQ(config.workload, WorkloadKind::kScientific);
  EXPECT_EQ(config.horizon, 86400.0);
  EXPECT_EQ(config.qos.max_response_time, 700.0);
  EXPECT_NEAR(config.initial_service_time_estimate, 315.0, 1e-9);
  EXPECT_EQ(config.bot.peak_interarrival_shape, 4.25);
  EXPECT_EQ(config.bot.peak_interarrival_scale, 7.86);
}

TEST(Scenario, ScaledInstancesRoundToAtLeastOne) {
  const ScenarioConfig config = web_scenario(0.1);
  EXPECT_EQ(config.scaled_instances(150), 15u);
  EXPECT_EQ(config.scaled_instances(125), 13u);  // round half away from zero
  EXPECT_EQ(config.scaled_instances(1), 1u);
  const ScenarioConfig tiny = web_scenario(0.001);
  EXPECT_EQ(tiny.scaled_instances(150), 1u);
}

TEST(Scenario, PaperStaticSizes) {
  EXPECT_EQ(paper_static_sizes(WorkloadKind::kWeb),
            (std::vector<std::size_t>{50, 75, 100, 125, 150}));
  EXPECT_EQ(paper_static_sizes(WorkloadKind::kScientific),
            (std::vector<std::size_t>{15, 30, 45, 60, 75}));
}

TEST(PolicySpec, Labels) {
  EXPECT_EQ(PolicySpec::adaptive().label(1.0), "Adaptive");
  EXPECT_EQ(PolicySpec::adaptive(PredictorKind::kEwma).label(1.0),
            "Adaptive(ewma)");
  EXPECT_EQ(PolicySpec::fixed(150).label(0.1), "Static-15");
  EXPECT_THROW(PolicySpec::fixed(0), std::invalid_argument);
}

TEST(Runner, StaticScientificRunProducesPaperRejection) {
  // The cheapest strong end-to-end anchor: Static-45 on the scientific
  // workload rejects ~31.7% (paper, Section V-C2).
  const ScenarioConfig config = scientific_scenario(1.0);
  const auto runs = run_replications(config, PolicySpec::fixed(45), 3, 7);
  const AggregateMetrics agg = aggregate(runs);
  EXPECT_NEAR(agg.rejection_rate.mean, 0.317, 0.04);
  EXPECT_EQ(agg.qos_violations.mean, 0.0);
}

TEST(Runner, SameSeedSameResult) {
  const ScenarioConfig config = scientific_scenario(1.0);
  const RunOutput a = run_scenario(config, PolicySpec::adaptive(), 99);
  const RunOutput b = run_scenario(config, PolicySpec::adaptive(), 99);
  EXPECT_EQ(a.metrics.generated, b.metrics.generated);
  EXPECT_EQ(a.metrics.accepted, b.metrics.accepted);
  EXPECT_EQ(a.metrics.rejected, b.metrics.rejected);
  EXPECT_EQ(a.metrics.avg_response_time, b.metrics.avg_response_time);
  EXPECT_EQ(a.metrics.vm_hours, b.metrics.vm_hours);
  EXPECT_EQ(a.metrics.simulated_events, b.metrics.simulated_events);
  EXPECT_EQ(a.decisions.size(), b.decisions.size());
}

TEST(Runner, DifferentSeedsDiffer) {
  const ScenarioConfig config = scientific_scenario(1.0);
  const RunOutput a = run_scenario(config, PolicySpec::adaptive(), 1);
  const RunOutput b = run_scenario(config, PolicySpec::adaptive(), 2);
  EXPECT_NE(a.metrics.generated, b.metrics.generated);
}

TEST(Runner, ReplicationsUseDistinctSeeds) {
  const ScenarioConfig config = scientific_scenario(1.0);
  const auto runs = run_replications(config, PolicySpec::fixed(30), 3, 5);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_NE(runs[0].seed, runs[1].seed);
  EXPECT_NE(runs[1].seed, runs[2].seed);
  EXPECT_NE(runs[0].generated, runs[1].generated);
}

TEST(Runner, ParallelReplicationsMatchSequential) {
  // Threaded execution must be bit-identical to sequential: seeds are fixed
  // up front and replications share no state.
  const ScenarioConfig config = scientific_scenario(1.0);
  const auto sequential = run_replications(config, PolicySpec::fixed(30), 4, 9,
                                           {}, /*parallelism=*/1);
  const auto parallel = run_replications(config, PolicySpec::fixed(30), 4, 9,
                                         {}, /*parallelism=*/4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].seed, parallel[i].seed);
    EXPECT_EQ(sequential[i].generated, parallel[i].generated);
    EXPECT_EQ(sequential[i].rejected, parallel[i].rejected);
    EXPECT_EQ(sequential[i].avg_response_time, parallel[i].avg_response_time);
    EXPECT_EQ(sequential[i].simulated_events, parallel[i].simulated_events);
  }
}

TEST(Runner, ParallelReplicationsAreElementWiseIdenticalAcrossAllFields) {
  // Stronger form of the spot checks above: every deterministic RunMetrics
  // field must be element-wise identical between parallelism=1 and
  // parallelism=4 for the same base seed, including the market ledger
  // (spot enabled so its fields are live, not trivially zero).
  ScenarioConfig config = scientific_scenario(1.0);
  config.market.enabled = true;
  config.market.acquisition.spot_fraction = 0.5;
  config.market.acquisition.bid = 0.7;
  const auto sequential = run_replications(config, PolicySpec::adaptive(), 4,
                                           13, {}, /*parallelism=*/1);
  const auto parallel = run_replications(config, PolicySpec::adaptive(), 4,
                                         13, {}, /*parallelism=*/4);
  ASSERT_EQ(sequential.size(), parallel.size());
#define EXPECT_REP_FIELD_EQ(field) \
  EXPECT_EQ(sequential[i].field, parallel[i].field) << #field << " rep " << i
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_REP_FIELD_EQ(policy);
    EXPECT_REP_FIELD_EQ(seed);
    EXPECT_REP_FIELD_EQ(generated);
    EXPECT_REP_FIELD_EQ(accepted);
    EXPECT_REP_FIELD_EQ(rejected);
    EXPECT_REP_FIELD_EQ(completed);
    EXPECT_REP_FIELD_EQ(qos_violations);
    EXPECT_REP_FIELD_EQ(avg_response_time);
    EXPECT_REP_FIELD_EQ(std_response_time);
    EXPECT_REP_FIELD_EQ(p95_response_time);
    EXPECT_REP_FIELD_EQ(p99_response_time);
    EXPECT_REP_FIELD_EQ(min_instances);
    EXPECT_REP_FIELD_EQ(max_instances);
    EXPECT_REP_FIELD_EQ(avg_instances);
    EXPECT_REP_FIELD_EQ(vm_hours);
    EXPECT_REP_FIELD_EQ(busy_vm_hours);
    EXPECT_REP_FIELD_EQ(utilization);
    EXPECT_REP_FIELD_EQ(rejection_rate);
    EXPECT_REP_FIELD_EQ(instance_failures);
    EXPECT_REP_FIELD_EQ(vm_crashes);
    EXPECT_REP_FIELD_EQ(host_crashes);
    EXPECT_REP_FIELD_EQ(boot_failures);
    EXPECT_REP_FIELD_EQ(boot_timeouts);
    EXPECT_REP_FIELD_EQ(lost_requests);
    EXPECT_REP_FIELD_EQ(lost_to_vm_crashes);
    EXPECT_REP_FIELD_EQ(lost_to_host_crashes);
    EXPECT_REP_FIELD_EQ(availability);
    EXPECT_REP_FIELD_EQ(recoveries);
    EXPECT_REP_FIELD_EQ(mttr_mean);
    EXPECT_REP_FIELD_EQ(mttr_max);
    EXPECT_REP_FIELD_EQ(reconciler_heals);
    EXPECT_REP_FIELD_EQ(reconciler_retries);
    EXPECT_REP_FIELD_EQ(reconciler_aborts);
    EXPECT_REP_FIELD_EQ(final_instances);
    EXPECT_REP_FIELD_EQ(slo_response_alerts);
    EXPECT_REP_FIELD_EQ(slo_rejection_alerts);
    EXPECT_REP_FIELD_EQ(slo_worst_burn_rate);
    EXPECT_REP_FIELD_EQ(drift_windows);
    EXPECT_REP_FIELD_EQ(drift_response_mape);
    EXPECT_REP_FIELD_EQ(drift_response_bias);
    EXPECT_REP_FIELD_EQ(spans_traced);
    EXPECT_REP_FIELD_EQ(billed_cost);
    EXPECT_REP_FIELD_EQ(on_demand_cost);
    EXPECT_REP_FIELD_EQ(spot_cost);
    EXPECT_REP_FIELD_EQ(reserved_cost);
    EXPECT_REP_FIELD_EQ(on_demand_purchases);
    EXPECT_REP_FIELD_EQ(spot_purchases);
    EXPECT_REP_FIELD_EQ(reserved_purchases);
    EXPECT_REP_FIELD_EQ(spot_revocations);
    EXPECT_REP_FIELD_EQ(revocation_kills);
    EXPECT_REP_FIELD_EQ(lost_to_revocations);
    EXPECT_REP_FIELD_EQ(spot_price_mean);
    EXPECT_REP_FIELD_EQ(spot_price_max);
    EXPECT_REP_FIELD_EQ(simulated_events);
  }
#undef EXPECT_REP_FIELD_EQ
  // Spot must actually have been exercised for the market block to bite.
  EXPECT_GT(sequential[0].spot_purchases, 0u);
}

TEST(Runner, AdaptiveParallelReplicationsMatchSequential) {
  // Same guarantee for the adaptive policy, whose monitor/analyzer/modeler
  // loop exercises far more per-replication state than a static pool.
  const ScenarioConfig config = scientific_scenario(1.0);
  const auto sequential = run_replications(config, PolicySpec::adaptive(), 3,
                                           11, {}, /*parallelism=*/1);
  const auto parallel = run_replications(config, PolicySpec::adaptive(), 3,
                                         11, {}, /*parallelism=*/3);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(sequential[i].seed, parallel[i].seed);
    EXPECT_EQ(sequential[i].generated, parallel[i].generated);
    EXPECT_EQ(sequential[i].accepted, parallel[i].accepted);
    EXPECT_EQ(sequential[i].rejected, parallel[i].rejected);
    EXPECT_EQ(sequential[i].qos_violations, parallel[i].qos_violations);
    EXPECT_EQ(sequential[i].avg_response_time, parallel[i].avg_response_time);
    EXPECT_EQ(sequential[i].vm_hours, parallel[i].vm_hours);
    EXPECT_EQ(sequential[i].max_instances, parallel[i].max_instances);
    EXPECT_EQ(sequential[i].simulated_events, parallel[i].simulated_events);
  }
}

TEST(Runner, ReplicationSeedsMatchBatchExecution) {
  // replication_seeds() exposes the exact seed sequence run_replications
  // uses, so a single replication can be reproduced outside a batch.
  const ScenarioConfig config = scientific_scenario(1.0);
  const auto seeds = replication_seeds(3, 5);
  ASSERT_EQ(seeds.size(), 3u);
  const auto runs = run_replications(config, PolicySpec::fixed(30), 3, 5);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].seed, seeds[i]);
  }
  const RunOutput solo = run_scenario(config, PolicySpec::fixed(30), seeds[0]);
  EXPECT_EQ(solo.metrics.generated, runs[0].generated);
  EXPECT_EQ(solo.metrics.simulated_events, runs[0].simulated_events);
}

TEST(Runner, ProgressCallbackFires) {
  const ScenarioConfig config = scientific_scenario(1.0);
  int calls = 0;
  run_replications(config, PolicySpec::fixed(15), 2, 5,
                   [&](const RunMetrics&) { ++calls; });
  EXPECT_EQ(calls, 2);
}

TEST(Runner, WorkloadRateCurveCoversHorizon) {
  const ScenarioConfig config = scientific_scenario(1.0);
  const auto curve = workload_rate_curve(config, 3600.0, 2, 3);
  ASSERT_EQ(curve.size(), 24u);
  // Rates must be higher inside the peak window.
  EXPECT_GT(curve[12].value, 4.0 * curve[3].value);
}

TEST(Aggregate, ComputesCrossRunStatistics) {
  RunMetrics a;
  a.policy = "X";
  a.vm_hours = 100.0;
  a.rejection_rate = 0.1;
  RunMetrics b = a;
  b.vm_hours = 120.0;
  b.rejection_rate = 0.2;
  const AggregateMetrics agg = aggregate({a, b});
  EXPECT_EQ(agg.policy, "X");
  EXPECT_EQ(agg.replications, 2u);
  EXPECT_NEAR(agg.vm_hours.mean, 110.0, 1e-12);
  EXPECT_GT(agg.vm_hours.half_width, 0.0);
  EXPECT_NEAR(agg.rejection_rate.mean, 0.15, 1e-12);
  EXPECT_THROW(aggregate({}), std::invalid_argument);
}

TEST(Report, TextTableAlignsColumns) {
  TextTable table({"a", "long_header"});
  table.add_row({"value_longer_than_header", "x"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("value_longer_than_header"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Report, FormatHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  ConfidenceInterval ci;
  ci.mean = 1.5;
  ci.half_width = 0.25;
  EXPECT_EQ(fmt_ci(ci, 2), "1.50 +- 0.25");
}

TEST(Report, PolicyCsvRoundTripsThroughReader) {
  RunMetrics run;
  run.policy = "Adaptive";
  run.vm_hours = 10.0;
  const AggregateMetrics agg = aggregate({run});
  std::ostringstream out;
  write_policy_csv(out, {agg});
  std::istringstream in(out.str());
  CsvReader reader(in);
  const auto header = reader.next_row();
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ((*header)[0], "policy");
  const auto row = reader.next_row();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[0], "Adaptive");
  EXPECT_EQ(std::stod((*row)[8]), 10.0);
}

TEST(Report, PrintClaim) {
  std::ostringstream out;
  print_claim(out, "test claim", 0.26, 0.24);
  EXPECT_EQ(out.str(), "  [claim] test claim: paper=0.26 measured=0.24\n");
}

}  // namespace
}  // namespace cloudprov
