#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "sim/entity.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace cloudprov {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<double> popped;
  queue.push(3.0, [] {});
  queue.push(1.0, [] {});
  queue.push(2.0, [] {});
  while (!queue.empty()) popped.push_back(queue.pop().time);
  EXPECT_EQ(popped, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(EventQueue, FifoAmongEqualTimes) {
  EventQueue queue;
  std::vector<int> order;
  const EventId a = queue.push(5.0, [&] { order.push_back(1); });
  const EventId b = queue.push(5.0, [&] { order.push_back(2); });
  const EventId c = queue.push(5.0, [&] { order.push_back(3); });
  // Handles are opaque (slot | generation), merely distinct; FIFO among
  // equal times is guaranteed by the internal sequence number, which the
  // execution order below observes.
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  while (!queue.empty()) queue.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue queue;
  queue.push(1.0, [] {});
  const EventId id = queue.push(2.0, [] {});
  queue.push(3.0, [] {});
  queue.cancel(id);
  EXPECT_EQ(queue.pop().time, 1.0);
  EXPECT_EQ(queue.pop().time, 3.0);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, CancelHeadIsReflectedByEmptyAndNextTime) {
  EventQueue queue;
  const EventId id = queue.push(1.0, [] {});
  queue.push(2.0, [] {});
  queue.cancel(id);
  EXPECT_EQ(queue.next_time(), 2.0);
  queue.pop();
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue queue;
  queue.push(1.0, [] {});
  queue.cancel(kInvalidEventId);
  queue.cancel(99999);
  EXPECT_FALSE(queue.empty());
}

TEST(EventQueue, CancelAllLeavesEmptyQueue) {
  EventQueue queue;
  std::vector<EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(queue.push(i, [] {}));
  for (EventId id : ids) queue.cancel(id);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, PopOnEmptyThrows) {
  EventQueue queue;
  EXPECT_THROW(queue.pop(), std::logic_error);
  EXPECT_THROW(queue.next_time(), std::logic_error);
}

TEST(EventQueue, StressAgainstReferenceHeap) {
  // Randomized differential test: the custom heap must pop the same order as
  // std::priority_queue over (time, id).
  EventQueue queue;
  using Ref = std::pair<double, EventId>;
  std::priority_queue<Ref, std::vector<Ref>, std::greater<>> reference;
  Rng rng(2024);
  for (int round = 0; round < 20000; ++round) {
    if (reference.empty() || rng.bernoulli(0.6)) {
      const double t = rng.uniform(0.0, 1000.0);
      const EventId id = queue.push(t, [] {});
      reference.push({t, id});
    } else {
      const Event event = queue.pop();
      EXPECT_EQ(event.time, reference.top().first);
      EXPECT_EQ(event.id, reference.top().second);
      reference.pop();
    }
  }
  while (!reference.empty()) {
    const Event event = queue.pop();
    EXPECT_EQ(event.id, reference.top().second);
    reference.pop();
  }
  EXPECT_TRUE(queue.empty());
}

TEST(Simulation, ExecutesInOrderAndAdvancesClock) {
  Simulation sim;
  std::vector<double> times;
  sim.schedule_at(2.0, [&] { times.push_back(sim.now()); });
  sim.schedule_at(1.0, [&] { times.push_back(sim.now()); });
  sim.schedule_at(3.0, [&] { times.push_back(sim.now()); });
  const auto executed = sim.run();
  EXPECT_EQ(executed, 3u);
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(sim.now(), 3.0);
}

TEST(Simulation, ScheduleInIsRelative) {
  Simulation sim;
  double fired_at = -1.0;
  sim.schedule_at(10.0, [&] {
    sim.schedule_in(5.0, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 15.0);
}

TEST(Simulation, SchedulingInThePastThrows) {
  Simulation sim;
  sim.schedule_at(10.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(5.0, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulation, RunUntilExecutesBoundaryEventAndAdvancesClock) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(5.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  sim.schedule_at(10.5, [&] { ++fired; });
  sim.run(10.0);
  EXPECT_EQ(fired, 2);           // 5.0 and exactly-10.0 run
  EXPECT_EQ(sim.now(), 10.0);    // clock parked at the horizon
  sim.run(20.0);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.now(), 20.0);    // advanced to horizon past the last event
}

TEST(Simulation, StopInterruptsRun) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.idle());
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, StepExecutesSingleEvent) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(PeriodicProcess, FiresAtFixedCadence) {
  Simulation sim;
  std::vector<double> fires;
  PeriodicProcess process(sim, 10.0, 5.0, [&](SimTime t) { fires.push_back(t); });
  sim.run(27.0);
  EXPECT_EQ(fires, (std::vector<double>{10.0, 15.0, 20.0, 25.0}));
}

TEST(PeriodicProcess, StopPreventsFurtherFires) {
  Simulation sim;
  int count = 0;
  PeriodicProcess process(sim, 1.0, 1.0, [&](SimTime) { ++count; });
  sim.schedule_at(3.5, [&] { process.stop(); });
  sim.run(10.0);
  EXPECT_EQ(count, 3);
  EXPECT_FALSE(process.running());
}

TEST(PeriodicProcess, DestructionCancelsPendingEvent) {
  Simulation sim;
  int count = 0;
  {
    PeriodicProcess process(sim, 1.0, 1.0, [&](SimTime) { ++count; });
  }
  sim.run(10.0);
  EXPECT_EQ(count, 0);
}

TEST(Entity, ExposesNameAndClock) {
  Simulation sim;
  class Dummy : public Entity {
   public:
    using Entity::Entity;
  };
  Dummy entity(sim, "dummy");
  EXPECT_EQ(entity.name(), "dummy");
  EXPECT_EQ(entity.now(), 0.0);
}

TEST(Simulation, DeterministicEventCountForFixedSeedModel) {
  // A self-scheduling chain driven by a seeded RNG must execute an identical
  // number of events run-to-run.
  auto run_once = [] {
    Simulation sim;
    Rng rng(5);
    std::function<void()> chain = [&] {
      if (sim.now() < 100.0) sim.schedule_in(rng.exponential(1.0), chain);
    };
    sim.schedule_at(0.0, chain);
    sim.run();
    return sim.executed_events();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace cloudprov
