// Tests for the non-exponential and composite-service models (mg1, G/G/c,
// tandem chains, Jackson networks) — the queueing-side half of the paper's
// "composite services" future work.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "cloud/broker.h"
#include "core/application_provisioner.h"
#include "queueing/jackson.h"
#include "queueing/mg1.h"
#include "queueing/mm1.h"
#include "queueing/mm1k.h"
#include "queueing/mmc.h"
#include "queueing/tandem.h"
#include "workload/poisson_source.h"

namespace cloudprov::queueing {
namespace {

TEST(Mg1, ScvOneReducesToMm1) {
  const QueueMetrics pk = mg1(4.0, 0.2, 1.0);
  const QueueMetrics markov = mm1(4.0, 5.0);
  EXPECT_NEAR(pk.mean_waiting_time, markov.mean_waiting_time, 1e-12);
  EXPECT_NEAR(pk.mean_in_system, markov.mean_in_system, 1e-12);
}

TEST(Mg1, DeterministicServiceHalvesWaiting) {
  const QueueMetrics md1 = mg1(4.0, 0.2, 0.0);
  const QueueMetrics mm = mg1(4.0, 0.2, 1.0);
  EXPECT_NEAR(md1.mean_waiting_time, 0.5 * mm.mean_waiting_time, 1e-12);
}

TEST(Mg1, PaperServiceDistributionIsNearlyDeterministic) {
  // 100 ms x U(1, 1.1): SCV = (0.01/12)*0.01 / 0.105^2 ~ 0.00076. The
  // exponential model the paper uses overestimates waiting by ~2x at the
  // same utilization — its conservatism at the modeling layer.
  const double mean = 0.105;
  const double var = 0.01 * 0.01 / 12.0 * 0.1;  // Var[0.1 * U(1,1.1)]
  const double scv = var / (mean * mean);
  EXPECT_LT(scv, 0.01);
  const QueueMetrics real_model = mg1(8.0, mean, scv);
  const QueueMetrics paper_model = mg1(8.0, mean, 1.0);
  EXPECT_GT(paper_model.mean_waiting_time,
            1.8 * real_model.mean_waiting_time);
}

TEST(Mg1, UnstableThrows) {
  EXPECT_THROW(mg1(10.0, 0.2, 1.0), std::invalid_argument);
  EXPECT_THROW(mg1(1.0, 0.2, -0.1), std::invalid_argument);
}

TEST(Mg1, ValidatedAgainstSimulatedUniformService) {
  // Single instance, effectively unbounded queue, service 0.1 * U(1, 1.1):
  // simulated waiting must match Pollaczek–Khinchine, not M/M/1.
  Simulation sim;
  DatacenterConfig dc;
  dc.host_count = 1;
  Datacenter datacenter(sim, dc, std::make_unique<LeastLoadedPlacement>());
  QosTargets qos;
  qos.max_response_time = 1e9;
  ProvisionerConfig config;
  config.fixed_queue_bound = 100000;  // effectively M/G/1
  config.initial_service_time_estimate = 0.105;
  ApplicationProvisioner provisioner(sim, datacenter, qos, config);
  provisioner.scale_to(1);

  const double lambda = 8.0;
  PoissonSource source(lambda,
                       std::make_shared<ScaledUniformDistribution>(0.1, 0.1),
                       0.0, 50000.0);
  Broker broker(sim, source, provisioner, Rng(45));
  broker.start();
  sim.run();

  const double mean = 0.105;
  const double var = 0.01 * 0.01 / 12.0 * 0.1;
  const QueueMetrics theory = mg1(lambda, mean, var / (mean * mean));
  EXPECT_NEAR(provisioner.response_time_stats().mean(),
              theory.mean_response_time, 0.04 * theory.mean_response_time);
  // And clearly below the exponential model's prediction.
  EXPECT_LT(provisioner.response_time_stats().mean(),
            0.75 * mg1(lambda, mean, 1.0).mean_response_time);
}

TEST(GGc, ReducesToMmcForPoissonExponential) {
  const QueueMetrics approx = ggc_allen_cunneen(8.0, 1.0, 0.1, 1.0, 2);
  const QueueMetrics exact = mmc(8.0, 10.0, 2);
  EXPECT_NEAR(approx.mean_waiting_time, exact.mean_waiting_time, 1e-12);
}

TEST(GGc, LowVariabilityShrinksQueue) {
  const QueueMetrics smooth = ggc_allen_cunneen(8.0, 0.2, 0.1, 0.0, 2);
  const QueueMetrics markov = ggc_allen_cunneen(8.0, 1.0, 0.1, 1.0, 2);
  EXPECT_NEAR(smooth.mean_waiting_time, 0.1 * markov.mean_waiting_time, 1e-12);
}

// ---------------------------------------------------------------- tandem

TEST(Tandem, SingleTierMatchesInstancePool) {
  const TandemMetrics chain =
      solve_tandem(40.0, {TandemTier{8, 10.0, 2}});
  const QueueMetrics single = mm1k(5.0, 10.0, 2);
  EXPECT_NEAR(chain.end_to_end_response, single.mean_response_time, 1e-12);
  EXPECT_NEAR(chain.end_to_end_acceptance, 1.0 - single.blocking_probability,
              1e-12);
  EXPECT_NEAR(chain.throughput, 8.0 * single.throughput, 1e-12);
}

TEST(Tandem, ResponseAddsAcrossTiers) {
  const std::vector<TandemTier> tiers{TandemTier{4, 20.0, 2},
                                      TandemTier{2, 15.0, 2}};
  const TandemMetrics chain = solve_tandem(10.0, tiers);
  ASSERT_EQ(chain.tiers.size(), 2u);
  EXPECT_NEAR(chain.end_to_end_response,
              chain.tiers[0].pool.mean_response_time +
                  chain.tiers[1].pool.mean_response_time,
              1e-12);
  // Downstream tier sees the upstream's accepted throughput only.
  EXPECT_NEAR(chain.tiers[1].input_rate, chain.tiers[0].pool.total_throughput,
              1e-12);
  EXPECT_LT(chain.tiers[1].input_rate, 10.0);
}

TEST(Tandem, BottleneckIsHighestLoadedTier) {
  const std::vector<TandemTier> tiers{TandemTier{10, 10.0, 2},
                                      TandemTier{2, 10.0, 2},   // hot tier
                                      TandemTier{10, 10.0, 2}};
  const TandemMetrics chain = solve_tandem(15.0, tiers);
  EXPECT_EQ(chain.bottleneck_tier, 1u);
}

TEST(Tandem, AcceptanceIsProductOfTierAcceptances) {
  const std::vector<TandemTier> tiers{TandemTier{1, 10.0, 1},
                                      TandemTier{1, 10.0, 1}};
  const TandemMetrics chain = solve_tandem(8.0, tiers);
  double expected = 1.0;
  for (const auto& tier : chain.tiers) {
    expected *= 1.0 - tier.pool.rejection_probability;
  }
  EXPECT_NEAR(chain.end_to_end_acceptance, expected, 1e-12);
  EXPECT_NEAR(chain.throughput, 8.0 * expected, 1e-9);
}

TEST(Tandem, Validation) {
  EXPECT_THROW(solve_tandem(1.0, {}), std::invalid_argument);
  EXPECT_THROW(solve_tandem(-1.0, {TandemTier{}}), std::invalid_argument);
}

// ---------------------------------------------------------------- Jackson

TEST(Jackson, TandemOfUnboundedMm1MatchesClosedForm) {
  // Two M/M/1 stations in series: lambda flows through both (Burke).
  JacksonNetwork net;
  net.nodes = {JacksonNode{1, 10.0}, JacksonNode{1, 8.0}};
  net.external_arrivals = {4.0, 0.0};
  net.routing = {{0.0, 1.0}, {0.0, 0.0}};
  const JacksonMetrics result = solve_jackson(net);
  EXPECT_NEAR(result.node_arrival_rates[0], 4.0, 1e-12);
  EXPECT_NEAR(result.node_arrival_rates[1], 4.0, 1e-12);
  const double expected_sojourn =
      mm1(4.0, 10.0).mean_response_time + mm1(4.0, 8.0).mean_response_time;
  EXPECT_NEAR(result.mean_sojourn_time, expected_sojourn, 1e-12);
}

TEST(Jackson, FeedbackLoopInflatesInternalTraffic) {
  // One station where 25% of completions retry: lambda_eff = a / (1 - 0.25).
  JacksonNetwork net;
  net.nodes = {JacksonNode{1, 10.0}};
  net.external_arrivals = {3.0};
  net.routing = {{0.25}};
  const JacksonMetrics result = solve_jackson(net);
  EXPECT_NEAR(result.node_arrival_rates[0], 4.0, 1e-12);
  // Sojourn uses Little on external arrivals: L / a, not L / lambda_eff.
  EXPECT_NEAR(result.mean_sojourn_time,
              mm1(4.0, 10.0).mean_in_system / 3.0, 1e-12);
}

TEST(Jackson, BranchingRoutesSplitTraffic) {
  // Front end routes 70% to cache, 30% to db; both exit.
  JacksonNetwork net;
  net.nodes = {JacksonNode{2, 10.0}, JacksonNode{1, 20.0}, JacksonNode{1, 5.0}};
  net.external_arrivals = {6.0, 0.0, 0.0};
  net.routing = {{0.0, 0.7, 0.3}, {0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}};
  const JacksonMetrics result = solve_jackson(net);
  EXPECT_NEAR(result.node_arrival_rates[1], 4.2, 1e-12);
  EXPECT_NEAR(result.node_arrival_rates[2], 1.8, 1e-12);
}

TEST(Jackson, UnstableNodeThrows) {
  JacksonNetwork net;
  net.nodes = {JacksonNode{1, 2.0}};
  net.external_arrivals = {3.0};
  net.routing = {{0.0}};
  EXPECT_THROW(solve_jackson(net), std::invalid_argument);
}

TEST(Jackson, MalformedRoutingThrows) {
  JacksonNetwork net;
  net.nodes = {JacksonNode{1, 10.0}};
  net.external_arrivals = {1.0};
  net.routing = {{1.5}};
  EXPECT_THROW(solve_jackson(net), std::invalid_argument);
  net.routing = {{0.5, 0.5}};
  EXPECT_THROW(solve_jackson(net), std::invalid_argument);
}

// ------------------------------------------------ hand-computed fixtures
// Every expectation below is worked out by hand from the closed forms, so a
// solver regression cannot hide behind a cross-check of one model against
// another model in the same file.

TEST(TandemFixture, PureLossTiersByHand) {
  // Tier 1: one M/M/1/1 (pure loss), lambda = 1, mu = 2. rho = 1/2, so
  // p_block = rho/(1+rho) = 1/3: acceptance 2/3, response exactly 1/mu.
  // Tier 2: one M/M/1/1, mu = 1, offered tier 1's accepted 2/3. rho = 2/3,
  // so p_block = (2/3)/(5/3) = 2/5: acceptance 3/5, response 1.
  const TandemMetrics chain =
      solve_tandem(1.0, {TandemTier{1, 2.0, 1}, TandemTier{1, 1.0, 1}});
  ASSERT_EQ(chain.tiers.size(), 2u);
  EXPECT_NEAR(chain.tiers[0].pool.rejection_probability, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(chain.tiers[1].input_rate, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(chain.tiers[1].pool.rejection_probability, 2.0 / 5.0, 1e-12);
  EXPECT_NEAR(chain.end_to_end_response, 0.5 + 1.0, 1e-12);
  EXPECT_NEAR(chain.end_to_end_acceptance, (2.0 / 3.0) * (3.0 / 5.0), 1e-12);
  EXPECT_NEAR(chain.throughput, 2.0 / 5.0, 1e-12);
  EXPECT_EQ(chain.bottleneck_tier, 1u);
}

TEST(TandemFixture, Mm1TwoSlotTierByHand) {
  // One M/M/1/2 at lambda = 1, mu = 2: p_n ~ rho^n with rho = 1/2 gives
  // (p0, p1, p2) = (4/7, 2/7, 1/7). Blocking 1/7; L = p1 + 2 p2 = 4/7;
  // accepted rate 6/7; W = L / accepted rate = 2/3.
  const TandemMetrics chain = solve_tandem(1.0, {TandemTier{1, 2.0, 2}});
  EXPECT_NEAR(chain.end_to_end_acceptance, 6.0 / 7.0, 1e-12);
  EXPECT_NEAR(chain.end_to_end_response, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(chain.throughput, 6.0 / 7.0, 1e-12);
}

TEST(TandemFixture, EvenSplitAcrossInstancesByHand) {
  // Two instances split lambda = 1 into two M/M/1/1 at lambda = 1/2 with
  // mu = 1: rho = 1/2 per instance, blocking 1/3, pool throughput
  // 2 x (1/2)(2/3) = 2/3, response exactly 1/mu (loss system).
  const TandemMetrics chain = solve_tandem(1.0, {TandemTier{2, 1.0, 1}});
  EXPECT_NEAR(chain.tiers[0].pool.rejection_probability, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(chain.throughput, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(chain.end_to_end_response, 1.0, 1e-12);
}

TEST(JacksonFixture, TwoNodeTandemByHand) {
  // M/M/1 pair at lambda = 1 with mu = 4 then mu = 2: W = 1/(mu - lambda)
  // per node gives 1/3 + 1 = 4/3 end to end; L = lambda W by Little.
  JacksonNetwork net;
  net.nodes = {JacksonNode{1, 4.0}, JacksonNode{1, 2.0}};
  net.external_arrivals = {1.0, 0.0};
  net.routing = {{0.0, 1.0}, {0.0, 0.0}};
  const JacksonMetrics result = solve_jackson(net);
  EXPECT_NEAR(result.node_metrics[0].mean_response_time, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(result.node_metrics[1].mean_response_time, 1.0, 1e-12);
  EXPECT_NEAR(result.mean_in_network, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(result.mean_sojourn_time, 4.0 / 3.0, 1e-12);
}

TEST(JacksonFixture, FeedbackNodeByHand) {
  // One node, mu = 3, external 1/s, half of completions loop back: the
  // traffic equation lambda = 1 + lambda/2 gives lambda = 2, rho = 2/3,
  // L = rho/(1-rho) = 2; an external arrival's sojourn is L/lambda_ext = 2.
  JacksonNetwork net;
  net.nodes = {JacksonNode{1, 3.0}};
  net.external_arrivals = {1.0};
  net.routing = {{0.5}};
  const JacksonMetrics result = solve_jackson(net);
  EXPECT_NEAR(result.node_arrival_rates[0], 2.0, 1e-12);
  EXPECT_NEAR(result.mean_in_network, 2.0, 1e-12);
  EXPECT_NEAR(result.mean_sojourn_time, 2.0, 1e-12);
}

TEST(JacksonFixture, BranchingByHand) {
  // Node 0 (mu = 3) takes 2/s and routes 30% to node 1 (mu = 1) and 20% to
  // node 2 (mu = 2); half leave. lambda = (2, 0.6, 0.4) by the traffic
  // equations; per-node M/M/1 occupancies L = rho/(1-rho) are 2, 3/2, 1/4,
  // so 15/4 requests sit in the network and sojourn = (15/4)/2 = 15/8.
  JacksonNetwork net;
  net.nodes = {JacksonNode{1, 3.0}, JacksonNode{1, 1.0}, JacksonNode{1, 2.0}};
  net.external_arrivals = {2.0, 0.0, 0.0};
  net.routing = {{0.0, 0.3, 0.2}, {0.0, 0.0, 0.0}, {0.0, 0.0, 0.0}};
  const JacksonMetrics result = solve_jackson(net);
  EXPECT_NEAR(result.node_arrival_rates[1], 0.6, 1e-12);
  EXPECT_NEAR(result.node_arrival_rates[2], 0.4, 1e-12);
  EXPECT_NEAR(result.mean_in_network, 15.0 / 4.0, 1e-12);
  EXPECT_NEAR(result.mean_sojourn_time, 15.0 / 8.0, 1e-12);
}

TEST(JacksonFixture, MultiServerNodeByHand) {
  // One M/M/2 node, mu = 1 per server, lambda = 1: rho = 1/2, so
  // L = 2 rho / (1 - rho^2) = 4/3 and W = L / lambda = 4/3.
  JacksonNetwork net;
  net.nodes = {JacksonNode{2, 1.0}};
  net.external_arrivals = {1.0};
  net.routing = {{0.0}};
  const JacksonMetrics result = solve_jackson(net);
  EXPECT_NEAR(result.mean_in_network, 4.0 / 3.0, 1e-12);
  EXPECT_NEAR(result.mean_sojourn_time, 4.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace cloudprov::queueing
