// Wall-clock profiler + run-manifest tests.
//
// Three layers: EventQueue's surfaced kernel internals against
// hand-constructed push/cancel/pop sequences (exact expected counts),
// WallProfiler scope attribution (self vs total under nesting, folded
// paths, snapshot cadence), and the run-manifest JSON writer (structure,
// seed-stream provenance, brace balance). Timing assertions compare
// measured scopes against busy-wait floors only — never wall-clock upper
// bounds, which would flake under load.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "experiment/manifest.h"
#include "experiment/scenario.h"
#include "lookahead/world_state.h"
#include "profile/profile_export.h"
#include "profile/wall_profiler.h"
#include "sim/event_queue.h"

namespace cloudprov {
namespace {

// ---------------------------------------------------------------- EventQueue

TEST(EventQueueStats, HighWatersTrackPeakNotCurrent) {
  EventQueue queue;
  for (int i = 0; i < 10; ++i) queue.push(static_cast<double>(i), [] {});
  EXPECT_EQ(queue.heap_depth(), 10u);
  EXPECT_EQ(queue.heap_high_water(), 10u);
  EXPECT_EQ(queue.slab_high_water(), 10u);

  // Draining shrinks the heap but never the high waters.
  while (!queue.empty()) queue.pop();
  EXPECT_EQ(queue.heap_depth(), 0u);
  EXPECT_EQ(queue.heap_high_water(), 10u);
  EXPECT_EQ(queue.slab_high_water(), 10u);

  // Refilling below the peak reuses slab slots: high waters stay put.
  for (int i = 0; i < 4; ++i) queue.push(static_cast<double>(i), [] {});
  EXPECT_EQ(queue.heap_high_water(), 10u);
  EXPECT_EQ(queue.slab_high_water(), 10u);

  // Exceeding the old peak moves both.
  for (int i = 0; i < 20; ++i) queue.push(static_cast<double>(i), [] {});
  EXPECT_EQ(queue.heap_high_water(), 24u);
  EXPECT_EQ(queue.slab_high_water(), 24u);
}

TEST(EventQueueStats, StaleDropsCountCompactionAndLazyTopDrops) {
  EventQueue queue;
  std::vector<EventId> ids;
  ids.reserve(100);
  for (int i = 0; i < 100; ++i) {
    ids.push_back(queue.push(static_cast<double>(i), [] {}));
  }
  EXPECT_EQ(queue.stale_drops(), 0u);

  // Cancel the first 60. Cancels leave stale heap records behind until the
  // compaction heuristic fires (heap >= 64 entries and live < half of
  // them): at the 51st cancel live drops to 49 < 100/2, compact sweeps all
  // 51 stale records at once. The remaining 9 cancels stay lazy (heap is
  // down to 49 entries, below the 64 floor).
  for (int i = 0; i < 60; ++i) queue.cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(queue.size(), 40u);
  EXPECT_EQ(queue.stale_drops(), 51u);
  EXPECT_EQ(queue.heap_depth(), 49u);  // 40 live + 9 lazy stale

  // Draining discards the 9 lazy records as they surface.
  std::uint64_t popped = 0;
  while (!queue.empty()) {
    queue.pop();
    ++popped;
  }
  EXPECT_EQ(popped, 40u);
  EXPECT_EQ(queue.stale_drops(), 60u);
  EXPECT_EQ(queue.heap_depth(), 0u);

  // Cancelling an already-cancelled / already-executed handle is a no-op
  // and must not inflate the stale counter.
  queue.cancel(ids[0]);
  queue.cancel(ids[99]);
  EXPECT_EQ(queue.stale_drops(), 60u);
}

TEST(EventQueueStats, InlineActionsNeverBox) {
  EventQueue queue;
  int counter = 0;
  for (int i = 0; i < 32; ++i) {
    queue.push(static_cast<double>(i), [&counter] { ++counter; });
  }
  EXPECT_EQ(queue.boxed_pushed_count(), 0u);
  while (!queue.empty()) queue.pop().action();
  EXPECT_EQ(counter, 32);
}

// -------------------------------------------------------------- WallProfiler

void busy_wait(double seconds) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(WallProfiler, NestedScopesSplitSelfFromTotal) {
  WallProfiler profiler;
  constexpr auto kOuter = ProfileCategory::kEngineRun;
  constexpr auto kInner = ProfileCategory::kPolicyDecision;
  {
    ProfileScope outer(&profiler, kOuter);
    busy_wait(0.002);
    {
      ProfileScope inner(&profiler, kInner);
      busy_wait(0.002);
    }
  }
  const auto& outer_stat = profiler.totals()[static_cast<std::size_t>(kOuter)];
  const auto& inner_stat = profiler.totals()[static_cast<std::size_t>(kInner)];
  EXPECT_EQ(outer_stat.count, 1u);
  EXPECT_EQ(inner_stat.count, 1u);
  // Both waits ran at least their floor.
  EXPECT_GE(inner_stat.self_seconds, 0.0015);
  EXPECT_GE(outer_stat.self_seconds, 0.0015);
  // total includes the child, self excludes it.
  EXPECT_GE(outer_stat.total_seconds,
            outer_stat.self_seconds + inner_stat.self_seconds - 1e-9);
  // self-sum coverage never double counts: covered <= wall.
  EXPECT_LE(profiler.covered_seconds(), profiler.wall_seconds() + 1e-6);
  EXPECT_GE(profiler.covered_seconds(), 0.003);
  EXPECT_GE(profiler.clock_overhead_seconds(), 0.0);
}

TEST(WallProfiler, FoldedStacksCarryFullPaths) {
  WallProfiler profiler;
  {
    ProfileScope outer(&profiler, ProfileCategory::kEngineRun);
    busy_wait(0.001);
    ProfileScope inner(&profiler, ProfileCategory::kPolicyDecision);
    busy_wait(0.001);
  }
  const std::vector<WallProfiler::PathStat> rows = profiler.folded();
  ASSERT_EQ(rows.size(), 2u);
  // Sorted by path: [engine.run] before [engine.run, policy.decision].
  ASSERT_EQ(rows[0].path.size(), 1u);
  EXPECT_EQ(rows[0].path[0], ProfileCategory::kEngineRun);
  ASSERT_EQ(rows[1].path.size(), 2u);
  EXPECT_EQ(rows[1].path[0], ProfileCategory::kEngineRun);
  EXPECT_EQ(rows[1].path[1], ProfileCategory::kPolicyDecision);
  EXPECT_EQ(rows[0].count, 1u);
  EXPECT_EQ(rows[1].count, 1u);

  std::ostringstream folded;
  write_folded_stacks(folded, profiler);
  EXPECT_NE(folded.str().find("engine.run "), std::string::npos);
  EXPECT_NE(folded.str().find("engine.run;policy.decision "),
            std::string::npos);
}

TEST(WallProfiler, NullScopeIsANoOp) {
  // The disabled configuration every instrumented site ships with.
  ProfileScope scope(nullptr, ProfileCategory::kEngineRun);
  SUCCEED();
}

TEST(WallProfiler, SnapshotCadenceFollowsWallInterval) {
  // Interval 0: every maybe_snapshot() records a row.
  WallProfiler eager(0.0);
  eager.maybe_snapshot(10.0, 100, 5, 5, 8, 8, 0, 0);
  eager.maybe_snapshot(20.0, 300, 5, 5, 8, 8, 0, 0);
  ASSERT_EQ(eager.snapshots().size(), 2u);
  EXPECT_EQ(eager.snapshots()[1].executed_events, 300u);
  EXPECT_EQ(eager.snapshots()[1].heap_high_water, 8u);

  // A long interval suppresses periodic rows, but force_snapshot (the
  // end-of-run flush) always records.
  WallProfiler lazy(3600.0);
  lazy.maybe_snapshot(10.0, 100, 5, 5, 8, 8, 0, 0);
  EXPECT_TRUE(lazy.snapshots().empty());
  lazy.force_snapshot(86400.0, 1385227, 0, 0, 12, 16, 3, 1);
  ASSERT_EQ(lazy.snapshots().size(), 1u);
  const ProfileSnapshot& last = lazy.snapshots().back();
  EXPECT_EQ(last.sim_time, 86400.0);
  EXPECT_EQ(last.executed_events, 1385227u);
  EXPECT_EQ(last.stale_drops, 3u);
  EXPECT_EQ(last.boxed_pushed, 1u);
  EXPECT_GT(last.events_per_second, 0.0);
  EXPECT_GT(last.speedup, 0.0);
}

TEST(WallProfiler, ProfileCsvHasStableSchema) {
  WallProfiler profiler(0.0);
  {
    ProfileScope scope(&profiler, ProfileCategory::kEngineRun);
    busy_wait(0.001);
    profiler.maybe_snapshot(42.0, 4096, 3, 3, 7, 9, 1, 0);
  }
  std::ostringstream csv;
  write_profile_csv(csv, profiler);
  const std::string text = csv.str();
  EXPECT_EQ(text.rfind("record,wall_seconds,sim_seconds,name,value\n", 0), 0u)
      << text.substr(0, 80);
  EXPECT_NE(text.find("snapshot,"), std::string::npos);
  EXPECT_NE(text.find(",heap_high_water,7"), std::string::npos);
  EXPECT_NE(text.find("category_self,"), std::string::npos);
  EXPECT_NE(text.find(",engine.run,"), std::string::npos);
}

// ------------------------------------------------------------- run manifest

std::size_t count_char(const std::string& text, char c) {
  std::size_t n = 0;
  for (const char ch : text) {
    if (ch == c) ++n;
  }
  return n;
}

TEST(RunManifest, CarriesProvenanceAndBalancedJson) {
  const ScenarioConfig config = web_scenario(0.002);
  RunMetrics metrics;
  metrics.policy = "Adaptive";
  metrics.seed = 42;
  metrics.generated = 1000;
  metrics.accepted = 990;
  metrics.rejected = 10;
  metrics.simulated_events = 2000;
  metrics.wall_seconds = 0.5;

  WallProfiler profiler(0.0);
  {
    ProfileScope scope(&profiler, ProfileCategory::kEngineRun);
    busy_wait(0.001);
    profiler.maybe_snapshot(100.0, 2000, 0, 0, 12, 16, 3, 0);
  }

  std::ostringstream out;
  write_run_manifest(out, config, "Adaptive", 42, 1, metrics, &profiler);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"schema\":\"cloudprov-run-manifest/1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"git_commit\":"), std::string::npos);
  EXPECT_NE(json.find("\"compiler_id\":"), std::string::npos);
  EXPECT_NE(json.find("\"generated\":1000"), std::string::npos);
  EXPECT_NE(json.find("\"covered_fraction\":"), std::string::npos);
  EXPECT_NE(json.find("\"category\":\"engine.run\""), std::string::npos);
  EXPECT_NE(json.find("\"heap_high_water\":12"), std::string::npos);

  // Seed-stream provenance must match the derivation every subsystem uses.
  const SeedStreams streams = derive_streams(42);
  EXPECT_NE(json.find("\"workload\":" + std::to_string(streams.workload)),
            std::string::npos);
  EXPECT_NE(json.find("\"fault\":" + std::to_string(streams.fault)),
            std::string::npos);
  EXPECT_NE(json.find("\"resilience\":" + std::to_string(streams.resilience)),
            std::string::npos);

  EXPECT_EQ(count_char(json, '{'), count_char(json, '}'));
  EXPECT_EQ(count_char(json, '['), count_char(json, ']'));
}

TEST(RunManifest, NullProfilerYieldsEmptyBreakdown) {
  const ScenarioConfig config = web_scenario(0.002);
  RunMetrics metrics;
  metrics.policy = "Static";
  metrics.seed = 7;
  metrics.generated = 10;
  metrics.accepted = 10;
  metrics.wall_seconds = 0.1;

  std::ostringstream out;
  write_run_manifest(out, config, "Static", 7, 4, metrics, nullptr);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"replications\":4"), std::string::npos);
  EXPECT_NE(json.find("\"breakdown\":[]"), std::string::npos);
  EXPECT_EQ(json.find("\"covered_fraction\""), std::string::npos);
  EXPECT_EQ(count_char(json, '{'), count_char(json, '}'));
}

}  // namespace
}  // namespace cloudprov
