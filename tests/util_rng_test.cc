#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "stats/running_stats.h"

namespace cloudprov {
namespace {

TEST(SplitMix64, KnownSequence) {
  // Reference values for seed 0 (Vigna's splitmix64 test vector).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.split();
  // The child must not replay the parent's stream.
  Rng parent_copy(99);
  (void)parent_copy.next();  // same draw used for splitting
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child.next() == parent.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformPositiveNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_GT(rng.uniform_positive(), 0.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
    stats.add(u);
  }
  EXPECT_NEAR(stats.mean(), 3.5, 0.02);
}

TEST(Rng, UniformIntCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(6, 0);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.uniform_int(10, 15);
    ASSERT_GE(v, 10u);
    ASSERT_LE(v, 15u);
    ++counts[v - 10];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 6, 400);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, InvalidArgumentsThrow) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
  EXPECT_THROW(rng.weibull(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.weibull(1.0, -1.0), std::invalid_argument);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
  EXPECT_THROW(rng.bernoulli(1.5), std::invalid_argument);
  EXPECT_THROW(rng.uniform(5.0, 2.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform_int(5, 2), std::invalid_argument);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
  EXPECT_THROW(rng.gamma(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.pareto(-1.0, 2.0), std::invalid_argument);
}

struct MomentCase {
  const char* name;
  double expected_mean;
  double expected_var;
  std::function<double(Rng&)> sample;
};

class VariateMomentsTest : public ::testing::TestWithParam<MomentCase> {};

TEST_P(VariateMomentsTest, MatchesClosedFormMoments) {
  const MomentCase& c = GetParam();
  Rng rng(20110917);
  RunningStats stats;
  const int n = 400000;
  for (int i = 0; i < n; ++i) stats.add(c.sample(rng));
  const double mean_tol =
      5.0 * std::sqrt(c.expected_var / n) + 1e-3 * std::abs(c.expected_mean);
  EXPECT_NEAR(stats.mean(), c.expected_mean, mean_tol) << c.name;
  EXPECT_NEAR(stats.variance(), c.expected_var,
              0.05 * c.expected_var + 1e-9)
      << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, VariateMomentsTest,
    ::testing::Values(
        MomentCase{"exp_rate2", 0.5, 0.25,
                   [](Rng& r) { return r.exponential(2.0); }},
        MomentCase{"exp_rate01", 10.0, 100.0,
                   [](Rng& r) { return r.exponential(0.1); }},
        MomentCase{"weibull_paper_interarrival",
                   7.86 * std::tgamma(1.0 + 1.0 / 4.25),
                   7.86 * 7.86 *
                       (std::tgamma(1.0 + 2.0 / 4.25) -
                        std::pow(std::tgamma(1.0 + 1.0 / 4.25), 2)),
                   [](Rng& r) { return r.weibull(4.25, 7.86); }},
        MomentCase{"weibull_paper_size", 2.11 * std::tgamma(1.0 + 1.0 / 1.76),
                   2.11 * 2.11 *
                       (std::tgamma(1.0 + 2.0 / 1.76) -
                        std::pow(std::tgamma(1.0 + 1.0 / 1.76), 2)),
                   [](Rng& r) { return r.weibull(1.76, 2.11); }},
        MomentCase{"normal", 3.0, 4.0, [](Rng& r) { return r.normal(3.0, 2.0); }},
        MomentCase{"lognormal", std::exp(0.5), (std::exp(1.0) - 1.0) * std::exp(1.0),
                   [](Rng& r) { return r.lognormal(0.0, 1.0); }},
        MomentCase{"poisson_small", 3.0, 3.0,
                   [](Rng& r) { return static_cast<double>(r.poisson(3.0)); }},
        MomentCase{"poisson_large", 120.0, 120.0,
                   [](Rng& r) { return static_cast<double>(r.poisson(120.0)); }},
        MomentCase{"gamma_shape_lt1", 0.5 * 2.0, 0.5 * 4.0,
                   [](Rng& r) { return r.gamma(0.5, 2.0); }},
        MomentCase{"gamma_shape3", 6.0, 12.0,
                   [](Rng& r) { return r.gamma(3.0, 2.0); }}),
    [](const ::testing::TestParamInfo<MomentCase>& param_info) {
      return param_info.param.name;
    });

TEST(Rng, PoissonZeroMean) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, PoissonBoundaryBetweenAlgorithms) {
  // Means just below/above the Knuth/PTRS switch should both be unbiased.
  for (double mean : {9.5, 10.5}) {
    Rng rng(17);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, 0.05) << mean;
  }
}

TEST(Rng, ExponentialTailProbability) {
  // P(X > 1) for rate 2 is e^-2 ~ 0.1353.
  Rng rng(23);
  int over = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) over += rng.exponential(2.0) > 1.0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(over) / n, std::exp(-2.0), 0.005);
}

TEST(Rng, ParetoTailAndMean) {
  // Survival P(X > x) = (xm/x)^alpha. The sample variance of a Pareto with
  // alpha <= 4 does not converge (infinite fourth moment), so the tail is the
  // right property to test.
  Rng rng(31);
  const int n = 200000;
  int over2 = 0;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.pareto(1.0, 3.0);
    EXPECT_GE(x, 1.0);
    sum += x;
    over2 += x > 2.0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(over2) / n, 0.125, 0.005);
  EXPECT_NEAR(sum / n, 1.5, 0.03);
}

TEST(Rng, WeibullReducesToExponentialAtShapeOne) {
  Rng rng(29);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.weibull(1.0, 4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
  EXPECT_NEAR(stats.variance(), 16.0, 0.8);
}

}  // namespace
}  // namespace cloudprov
