#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/adaptive_policy.h"
#include "core/application_provisioner.h"
#include "core/vertical_policy.h"
#include "core/workload_analyzer.h"
#include "predict/ewma.h"
#include "predict/periodic_profile.h"

namespace cloudprov {
namespace {

struct Fixture {
  Simulation sim;
  Datacenter datacenter{sim, dc_config(), std::make_unique<LeastLoadedPlacement>()};
  ApplicationProvisioner provisioner{sim, datacenter, QosTargets{}, prov_config()};

  static DatacenterConfig dc_config() {
    DatacenterConfig config;
    config.host_count = 8;
    return config;
  }
  static ProvisionerConfig prov_config() {
    ProvisionerConfig config;
    config.initial_service_time_estimate = 0.1;
    return config;
  }

  void inject_requests(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      Request r;
      r.id = i + 1;
      r.arrival_time = sim.now();
      r.service_demand = 0.1;
      provisioner.on_request(r);
    }
  }
};

TEST(WorkloadAnalyzer, IssuesInitialAlertOnStart) {
  Fixture f;
  auto predictor = std::make_shared<EwmaPredictor>(0.5, 0.0);
  AnalyzerConfig config;
  WorkloadAnalyzer analyzer(f.sim, f.provisioner, predictor, config);
  std::vector<std::pair<SimTime, double>> alerts;
  analyzer.start([&](SimTime t, double rate) { alerts.emplace_back(t, rate); });
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].first, 0.0);
}

TEST(WorkloadAnalyzer, FeedsObservedWindowRatesToPredictor) {
  Fixture f;
  f.provisioner.scale_to(8);
  auto predictor = std::make_shared<EwmaPredictor>(1.0, 0.0);  // mirror last
  AnalyzerConfig config;
  config.analysis_interval = 10.0;
  WorkloadAnalyzer analyzer(f.sim, f.provisioner, predictor, config);
  analyzer.start([](SimTime, double) {});
  // 50 arrivals in the first 10-second window -> observed rate 5/s.
  f.sim.schedule_at(1.0, [&] { f.inject_requests(50); });
  f.sim.run(10.5);
  EXPECT_NEAR(predictor->current(), 5.0, 1e-9);
}

TEST(WorkloadAnalyzer, AlertsEveryIntervalWithoutEpsilon) {
  Fixture f;
  auto predictor = std::make_shared<EwmaPredictor>(0.5, 0.0);
  AnalyzerConfig config;
  config.analysis_interval = 5.0;
  WorkloadAnalyzer analyzer(f.sim, f.provisioner, predictor, config);
  int alerts = 0;
  analyzer.start([&](SimTime, double) { ++alerts; });
  f.sim.run(24.9);
  EXPECT_EQ(alerts, 1 + 4);  // initial + t = 5, 10, 15, 20
}

TEST(WorkloadAnalyzer, EpsilonSuppressesUnchangedPredictions) {
  Fixture f;
  // Constant-profile predictor: rate never changes after the first alert.
  auto predictor = std::make_shared<PeriodicProfilePredictor>(
      std::vector<ProfileEntry>{{-1, 0.0, 100.0}}, 1);
  AnalyzerConfig config;
  config.analysis_interval = 5.0;
  config.change_epsilon = 0.01;
  WorkloadAnalyzer analyzer(f.sim, f.provisioner, predictor, config);
  int alerts = 0;
  analyzer.start([&](SimTime, double) { ++alerts; });
  f.sim.run(100.0);
  EXPECT_EQ(alerts, 1);  // only the initial alert
}

TEST(WorkloadAnalyzer, LeadTimeLooksAhead) {
  Fixture f;
  // Profile: 10 req/s until t = 100, then 50 req/s.
  auto predictor = std::make_shared<PeriodicProfilePredictor>(
      std::vector<ProfileEntry>{{-1, 0.0, 10.0}, {-1, 100.0, 50.0}}, 1);
  AnalyzerConfig config;
  config.analysis_interval = 10.0;
  config.lead_time = 20.0;
  WorkloadAnalyzer analyzer(f.sim, f.provisioner, predictor, config);
  std::vector<std::pair<SimTime, double>> alerts;
  analyzer.start([&](SimTime t, double rate) { alerts.emplace_back(t, rate); });
  f.sim.run(120.0);
  // The alert carrying the 50 req/s rate must fire at t = 80 (lead 20 s).
  bool found = false;
  for (const auto& [t, rate] : alerts) {
    if (rate == 50.0) {
      EXPECT_EQ(t, 80.0);
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(WorkloadAnalyzer, StopHaltsAlerts) {
  Fixture f;
  auto predictor = std::make_shared<EwmaPredictor>(0.5, 0.0);
  AnalyzerConfig config;
  config.analysis_interval = 5.0;
  WorkloadAnalyzer analyzer(f.sim, f.provisioner, predictor, config);
  int alerts = 0;
  analyzer.start([&](SimTime, double) { ++alerts; });
  f.sim.schedule_at(12.0, [&] { analyzer.stop(); });
  f.sim.run(100.0);
  EXPECT_EQ(alerts, 3);  // t = 0, 5, 10
}

TEST(AdaptivePolicy, ScalesPoolOnAlerts) {
  Fixture f;
  // Step profile: 10 req/s, then 40 req/s from t = 60.
  auto predictor = std::make_shared<PeriodicProfilePredictor>(
      std::vector<ProfileEntry>{{-1, 0.0, 10.0}, {-1, 60.0, 40.0}}, 1);
  ModelerConfig modeler;
  modeler.max_vms = 64;
  AnalyzerConfig analyzer_config;
  analyzer_config.analysis_interval = 10.0;
  analyzer_config.lead_time = 10.0;
  AdaptivePolicy policy(f.sim, predictor, modeler, analyzer_config);
  policy.attach(f.provisioner);
  // Initial sizing for 10 req/s * 0.1 s = 1 erlang -> 1-2 instances.
  const std::size_t initial = f.provisioner.active_instances();
  EXPECT_GE(initial, 1u);
  EXPECT_LE(initial, 2u);
  f.sim.run(120.0);
  // After the step the pool must reach 40 * 0.1 / [0.8, 0.9] ~ 5 instances.
  EXPECT_GE(f.provisioner.active_instances(), 4u);
  EXPECT_LE(f.provisioner.active_instances(), 6u);
  EXPECT_FALSE(policy.decisions().empty());
  EXPECT_EQ(policy.name(), "Adaptive");
}

TEST(AdaptivePolicy, AttachTwiceThrows) {
  Fixture f;
  auto predictor = std::make_shared<EwmaPredictor>(0.5, 0.0);
  AdaptivePolicy policy(f.sim, predictor, ModelerConfig{}, AnalyzerConfig{});
  policy.attach(f.provisioner);
  EXPECT_THROW(policy.attach(f.provisioner), std::logic_error);
}

TEST(VerticalPolicy, AdjustsInstanceSpeedToTrackLoad) {
  Fixture f;
  auto predictor = std::make_shared<PeriodicProfilePredictor>(
      std::vector<ProfileEntry>{{-1, 0.0, 20.0}, {-1, 50.0, 80.0}}, 1);
  VerticalScalingConfig config;
  config.instances = 4;
  config.target_utilization = 0.8;
  config.base_service_time = 0.1;
  config.min_speed = 0.25;
  config.max_speed = 8.0;
  AnalyzerConfig analyzer_config;
  analyzer_config.analysis_interval = 10.0;
  analyzer_config.lead_time = 0.0;
  VerticalScalingPolicy policy(f.sim, predictor, config, analyzer_config);
  policy.attach(f.provisioner);
  EXPECT_EQ(f.provisioner.active_instances(), 4u);
  // At 20 req/s: speed = 20 * 0.1 / (4 * 0.8) = 0.625.
  double speed = 0.0;
  f.provisioner.for_each_instance([&](Vm& vm) { speed = vm.spec().speed; });
  EXPECT_NEAR(speed, 0.625, 1e-9);
  f.sim.run(60.0);
  // At 80 req/s: speed = 80 * 0.1 / (4 * 0.8) = 2.5.
  f.provisioner.for_each_instance([&](Vm& vm) { speed = vm.spec().speed; });
  EXPECT_NEAR(speed, 2.5, 1e-9);
  EXPECT_GE(policy.history().size(), 2u);
}

TEST(VerticalPolicy, ClampsSpeedRange) {
  Fixture f;
  auto predictor = std::make_shared<PeriodicProfilePredictor>(
      std::vector<ProfileEntry>{{-1, 0.0, 10000.0}}, 1);
  VerticalScalingConfig config;
  config.instances = 2;
  config.max_speed = 3.0;
  VerticalScalingPolicy policy(f.sim, predictor, config, AnalyzerConfig{});
  policy.attach(f.provisioner);
  double speed = 0.0;
  f.provisioner.for_each_instance([&](Vm& vm) { speed = vm.spec().speed; });
  EXPECT_EQ(speed, 3.0);
}

}  // namespace
}  // namespace cloudprov
