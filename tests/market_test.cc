// Spot-market IaaS layer tests (src/market): price-path determinism,
// catalog/acquisition semantics, revocation drain-vs-kill through the
// provisioner lifecycle, reconciler healing of revoked deficits, the strict
// no-op guarantee of a disabled (or pure on-demand) market, and byte-stable
// market CSV output.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "core/application_provisioner.h"
#include "experiment/runner.h"
#include "fault/reconciler.h"
#include "market/market_broker.h"

namespace cloudprov {
namespace {

struct World {
  Simulation sim;
  Datacenter datacenter;

  explicit World(std::size_t hosts = 4, SimTime boot_delay = 0.0)
      : datacenter(sim, make_config(hosts, boot_delay),
                   std::make_unique<LeastLoadedPlacement>()) {}

  static DatacenterConfig make_config(std::size_t hosts, SimTime boot_delay) {
    DatacenterConfig config;
    config.host_count = hosts;
    config.vm_boot_delay = boot_delay;
    return config;
  }
};

Request make_request(std::uint64_t id, SimTime t, double demand) {
  Request r;
  r.id = id;
  r.arrival_time = t;
  r.service_demand = demand;
  return r;
}

ProvisionerConfig provisioner_config() {
  ProvisionerConfig config;
  config.initial_service_time_estimate = 0.1;
  return config;
}

QosTargets lenient_qos() {
  QosTargets qos;
  qos.max_response_time = 10.0;
  return qos;
}

/// Noise-free price config: pure deterministic mean reversion from `initial`
/// toward `mean`, closing half the gap per 60 s step (reversion 30/h).
SpotPriceConfig drift_only(double initial, double mean) {
  SpotPriceConfig config;
  config.initial = initial;
  config.mean = mean;
  config.reversion_per_hour = 30.0;
  config.volatility = 0.0;
  config.spike_rate_per_hour = 0.0;
  return config;
}

/// Market that buys spot for the whole pool at t=0 (initial price 0.2 <=
/// bid 0.7) and deterministically revokes at the first 60 s tick (price
/// jumps to 1.1 > bid under drift_only(0.2, 2.0)).
MarketConfig revoking_market(SimTime notice) {
  MarketConfig config;
  config.enabled = true;
  config.acquisition.spot_fraction = 1.0;
  config.acquisition.bid = 0.7;
  config.revocation.notice = notice;
  config.spot_price = drift_only(0.2, 2.0);
  return config;
}

// ------------------------------------------------------------- price process

TEST(SpotPrice, PathIsAPureFunctionOfSeedAndQueryPatternIndependent) {
  SpotPriceConfig config;
  config.volatility = 0.2;
  config.spike_rate_per_hour = 4.0;  // plenty of regime churn
  SpotPriceProcess coarse(config, 99);
  SpotPriceProcess fine(config, 99);
  coarse.advance_to(7200.0);  // one jump
  for (SimTime t = 0.0; t <= 7200.0; t += 17.0) fine.advance_to(t);  // many
  fine.advance_to(7200.0);
  ASSERT_EQ(coarse.path().size(), fine.path().size());
  for (std::size_t i = 0; i < coarse.path().size(); ++i) {
    EXPECT_EQ(coarse.path()[i].time, fine.path()[i].time);
    EXPECT_EQ(coarse.path()[i].price, fine.path()[i].price);
  }
}

TEST(SpotPrice, DifferentSeedsDiverge) {
  SpotPriceConfig config;
  SpotPriceProcess a(config, 1);
  SpotPriceProcess b(config, 2);
  a.advance_to(3600.0);
  b.advance_to(3600.0);
  EXPECT_NE(a.current(), b.current());
}

TEST(SpotPrice, ClampsToFloorAndCeiling) {
  SpotPriceConfig config;
  config.volatility = 5.0;  // wild diffusion to slam both bounds
  config.floor = 0.1;
  config.ceiling = 0.9;
  SpotPriceProcess process(config, 7);
  process.advance_to(86400.0);
  for (const PricePoint& p : process.path()) {
    EXPECT_GE(p.price, 0.1);
    EXPECT_LE(p.price, 0.9);
  }
}

TEST(SpotPrice, NoiseFreeDriftMatchesHandComputedSteps) {
  // Half the gap to the mean closes per step: 0.2 -> 1.1 -> 1.55 -> ...
  SpotPriceProcess process(drift_only(0.2, 2.0), 42);
  process.advance_to(180.0);
  ASSERT_EQ(process.path().size(), 4u);
  EXPECT_DOUBLE_EQ(process.path()[0].price, 0.2);
  EXPECT_DOUBLE_EQ(process.path()[1].price, 0.2 + 0.5 * (2.0 - 0.2));
  EXPECT_DOUBLE_EQ(process.path()[2].price, 1.1 + 0.5 * (2.0 - 1.1));
  EXPECT_DOUBLE_EQ(process.price_at(0.0), 0.2);
  EXPECT_DOUBLE_EQ(process.price_at(59.9), 0.2);
  EXPECT_DOUBLE_EQ(process.price_at(60.0), 1.1);
  // Past the generated path the last segment extends (billing quanta may
  // round a lifetime beyond the horizon).
  EXPECT_DOUBLE_EQ(process.price_at(1e6), process.current());
}

TEST(SpotPrice, IntegralAndMeanMatchPiecewiseSegments) {
  SpotPriceProcess process(drift_only(0.2, 2.0), 42);
  process.advance_to(120.0);
  // Segments: [0,60) @ 0.2, [60,120) @ 1.1, [120,...) @ 1.55.
  EXPECT_DOUBLE_EQ(process.integrate(0.0, 60.0), 0.2 * 60.0);
  EXPECT_DOUBLE_EQ(process.integrate(30.0, 90.0), 0.2 * 30.0 + 1.1 * 30.0);
  EXPECT_DOUBLE_EQ(process.integrate(0.0, 120.0), (0.2 + 1.1) * 60.0);
  EXPECT_DOUBLE_EQ(process.mean_price(120.0), (0.2 + 1.1) / 2.0);
  EXPECT_DOUBLE_EQ(process.max_price(60.0), 1.1);
  // Beyond the generated path the last price extends.
  EXPECT_DOUBLE_EQ(process.integrate(120.0, 180.0), 1.55 * 60.0);
}

// ------------------------------------------------------ catalog & acquisition

TEST(Catalog, StandardSellsAllThreeKindsAtEc2StyleDiscounts) {
  const MarketCatalog catalog = MarketCatalog::standard(2.0);
  ASSERT_EQ(catalog.classes.size(), 3u);
  EXPECT_TRUE(catalog.has(PurchaseKind::kOnDemand));
  EXPECT_TRUE(catalog.has(PurchaseKind::kSpot));
  EXPECT_TRUE(catalog.has(PurchaseKind::kReserved));
  const InstanceClass& od =
      catalog.classes[catalog.find(PurchaseKind::kOnDemand)];
  const InstanceClass& spot = catalog.classes[catalog.find(PurchaseKind::kSpot)];
  const InstanceClass& rsv =
      catalog.classes[catalog.find(PurchaseKind::kReserved)];
  EXPECT_DOUBLE_EQ(od.pricing.price_per_hour, 2.0);
  EXPECT_DOUBLE_EQ(spot.pricing.price_per_hour, 0.35 * 2.0);
  EXPECT_DOUBLE_EQ(rsv.pricing.price_per_hour, 0.60 * 2.0);
  // Delivery profile inherited from the data center: the on-demand class
  // must stay bit-identical to market-less provisioning.
  EXPECT_FALSE(od.boot_delay.has_value());
  EXPECT_NO_THROW(catalog.validate());
}

TEST(Catalog, ValidationRejectsBrokenCatalogs) {
  MarketCatalog empty;
  EXPECT_THROW(empty.validate(), std::invalid_argument);

  MarketCatalog no_od;
  no_od.classes.push_back({"spot", PurchaseKind::kSpot, {}, {}});
  EXPECT_THROW(no_od.validate(), std::invalid_argument);

  MarketCatalog duplicate = MarketCatalog::standard();
  duplicate.classes.push_back(duplicate.classes.front());
  EXPECT_THROW(duplicate.validate(), std::invalid_argument);
}

TEST(Acquisition, ReservedBaseThenSpotUnderCapThenOnDemand) {
  const MarketCatalog catalog = MarketCatalog::standard();
  const std::size_t od = catalog.find(PurchaseKind::kOnDemand);
  const std::size_t spot = catalog.find(PurchaseKind::kSpot);
  const std::size_t rsv = catalog.find(PurchaseKind::kReserved);

  AcquisitionPolicy policy;
  policy.reserved_pool = 2;
  policy.spot_fraction = 0.5;
  policy.bid = 0.7;

  // Reserved base load fills first, regardless of the spot price.
  EXPECT_EQ(policy.choose(catalog, 0.1, 0, 0, 10), rsv);
  EXPECT_EQ(policy.choose(catalog, 0.1, 1, 0, 10), rsv);
  // Then spot while price <= bid and under floor(0.5 * 10) = 5 live.
  EXPECT_EQ(policy.choose(catalog, 0.7, 2, 0, 10), spot);  // at the bid
  EXPECT_EQ(policy.choose(catalog, 0.1, 2, 4, 10), spot);
  EXPECT_EQ(policy.choose(catalog, 0.1, 2, 5, 10), od);  // cap reached
  // Out-bid market falls back to on-demand.
  EXPECT_EQ(policy.choose(catalog, 0.71, 2, 0, 10), od);
}

TEST(Acquisition, SpotNeedsBidFractionAndAListedClass) {
  const MarketCatalog catalog = MarketCatalog::standard();
  AcquisitionPolicy policy;
  EXPECT_FALSE(policy.spot_enabled(catalog));  // bid 0, fraction 0
  policy.bid = 0.7;
  EXPECT_FALSE(policy.spot_enabled(catalog));  // fraction still 0
  policy.spot_fraction = 0.5;
  EXPECT_TRUE(policy.spot_enabled(catalog));
  MarketCatalog od_only;
  od_only.classes.push_back({"od", PurchaseKind::kOnDemand, {}, {}});
  EXPECT_FALSE(policy.spot_enabled(od_only));
  // A pure on-demand policy always picks the on-demand class.
  AcquisitionPolicy pure;
  EXPECT_EQ(pure.choose(catalog, 0.01, 0, 0, 10),
            catalog.find(PurchaseKind::kOnDemand));
}

// ------------------------------------------------- revocation through drain

TEST(Revocation, DrainingInstanceCompletesInFlightInsideTheNotice) {
  World world;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  MarketBroker broker(world.sim, world.datacenter, revoking_market(100.0), 5);
  broker.attach(provisioner);
  broker.start();

  provisioner.scale_to(1);  // bought spot at price 0.2
  EXPECT_EQ(broker.purchases(PurchaseKind::kSpot), 1u);
  // Busy from t=30 to t=80: the revocation at t=60 must drain, not kill.
  world.sim.schedule_at(30.0, [&] {
    provisioner.on_request(make_request(1, 30.0, 50.0));
  });
  world.sim.run(500.0);

  EXPECT_EQ(broker.revocations(), 1u);
  EXPECT_EQ(broker.revocation_kills(), 0u);  // drained before t=160
  EXPECT_EQ(provisioner.completed(), 1u);    // in-flight request finished
  EXPECT_EQ(provisioner.lost_by_cause(FaultCause::kSpotRevocation), 0u);
  EXPECT_EQ(provisioner.failures_by_cause(FaultCause::kSpotRevocation), 0u);
  EXPECT_EQ(world.datacenter.live_vm_count(), 0u);
}

TEST(Revocation, ExpiredNoticeHardKillsAndReconcilerHealsOnDemand) {
  World world;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  MarketBroker broker(world.sim, world.datacenter, revoking_market(100.0), 5);
  broker.attach(provisioner);
  broker.start();
  ReconcilerConfig rconfig;
  rconfig.enabled = true;
  rconfig.interval = 30.0;
  Reconciler reconciler(world.sim, provisioner, rconfig);
  reconciler.start();

  provisioner.scale_to(1);
  // Busy until t=1000: the notice served at t=60 expires at t=160 with the
  // request still in flight -> hard kill through the fault path.
  provisioner.on_request(make_request(1, 0.0, 1000.0));
  world.sim.run(500.0);

  EXPECT_EQ(broker.revocations(), 1u);
  EXPECT_EQ(broker.revocation_kills(), 1u);
  EXPECT_EQ(provisioner.lost_by_cause(FaultCause::kSpotRevocation), 1u);
  EXPECT_EQ(provisioner.failures_by_cause(FaultCause::kSpotRevocation), 1u);
  EXPECT_EQ(provisioner.lost_to_failures(), 1u);
  // The reconciler healed the revoked deficit; the replacement was bought
  // on-demand (price 1.1+ > bid 0.7 ever since the revocation).
  EXPECT_GE(reconciler.heals(), 1u);
  EXPECT_EQ(provisioner.active_instances(), 1u);
  EXPECT_GE(broker.purchases(PurchaseKind::kOnDemand), 1u);
  EXPECT_EQ(broker.purchases(PurchaseKind::kSpot), 1u);  // never spot again
}

TEST(Revocation, BootingInstanceIsDestroyedOutright) {
  World world(4, /*boot_delay=*/200.0);  // still BOOTING at the t=60 revoke
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  MarketBroker broker(world.sim, world.datacenter, revoking_market(100.0), 5);
  broker.attach(provisioner);
  broker.start();

  provisioner.scale_to(1);
  world.sim.run(500.0);

  EXPECT_EQ(broker.revocations(), 1u);
  // Destroyed at notice time (held no requests); the kill found it gone.
  EXPECT_EQ(broker.revocation_kills(), 0u);
  EXPECT_EQ(provisioner.active_instances(), 0u);
  EXPECT_EQ(provisioner.failures_by_cause(FaultCause::kSpotRevocation), 0u);
  EXPECT_EQ(world.datacenter.live_vm_count(), 0u);
}

TEST(Revocation, RevokedDrainersAreNeverResurrectedByScaleUps) {
  World world;
  ApplicationProvisioner provisioner(world.sim, world.datacenter, lenient_qos(),
                                     provisioner_config());
  // Long notice: the drainers stay alive for the whole test window.
  MarketBroker broker(world.sim, world.datacenter, revoking_market(1000.0), 5);
  broker.attach(provisioner);
  broker.start();

  provisioner.scale_to(2);  // both spot at price 0.2
  EXPECT_EQ(broker.purchases(PurchaseKind::kSpot), 2u);
  // Both busy until t=300, so the t=60 revocation drains both.
  provisioner.on_request(make_request(1, 0.0, 300.0));
  provisioner.on_request(make_request(2, 0.0, 300.0));

  // A scale-up while the revoked pair is still draining must buy fresh
  // capacity (on-demand: price 1.1 > bid) instead of resurrecting them.
  world.sim.schedule_at(90.0, [&] {
    EXPECT_EQ(provisioner.active_instances(), 0u);
    EXPECT_EQ(provisioner.draining_instances(), 2u);
    EXPECT_EQ(provisioner.scale_to(2), 2u);
    EXPECT_EQ(provisioner.draining_instances(), 2u);  // untouched
    EXPECT_EQ(world.datacenter.total_vms_created(), 4u);
    EXPECT_EQ(broker.purchases(PurchaseKind::kOnDemand), 2u);
  });
  world.sim.run(200.0);  // before the requests finish and the notice expires

  EXPECT_EQ(broker.revocations(), 2u);
  EXPECT_EQ(provisioner.active_instances(), 2u);
  EXPECT_EQ(provisioner.draining_instances(), 2u);
}

// ---------------------------------------------------- end-to-end guarantees

void expect_headline_identical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.qos_violations, b.qos_violations);
  EXPECT_EQ(a.avg_response_time, b.avg_response_time);
  EXPECT_EQ(a.std_response_time, b.std_response_time);
  EXPECT_EQ(a.p95_response_time, b.p95_response_time);
  EXPECT_EQ(a.p99_response_time, b.p99_response_time);
  EXPECT_EQ(a.min_instances, b.min_instances);
  EXPECT_EQ(a.max_instances, b.max_instances);
  EXPECT_EQ(a.avg_instances, b.avg_instances);
  EXPECT_EQ(a.vm_hours, b.vm_hours);
  EXPECT_EQ(a.busy_vm_hours, b.busy_vm_hours);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.rejection_rate, b.rejection_rate);
  EXPECT_EQ(a.instance_failures, b.instance_failures);
  EXPECT_EQ(a.lost_requests, b.lost_requests);
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.final_instances, b.final_instances);
  EXPECT_EQ(a.simulated_events, b.simulated_events);
}

ScenarioConfig short_web() {
  ScenarioConfig config = web_scenario(0.01);
  config.horizon = 2.0 * 3600.0;
  config.web.horizon = config.horizon;
  return config;
}

TEST(MarketNoOp, DisabledAndPureOnDemandMarketsAreBitIdentical) {
  const RunMetrics off =
      run_scenario(short_web(), PolicySpec::adaptive(), 42).metrics;

  ScenarioConfig od = short_web();
  od.market.enabled = true;  // standard catalog, spot_fraction 0, bid 0
  const RunOutput on = run_scenario(od, PolicySpec::adaptive(), 42);

  expect_headline_identical(off, on.metrics);
  // The disabled run reports no market block at all...
  EXPECT_EQ(off.billed_cost, 0.0);
  EXPECT_EQ(off.on_demand_purchases, 0u);
  // ...while the pure on-demand market bills every purchase, spot-free.
  ASSERT_TRUE(on.market.has_value());
  EXPECT_GT(on.metrics.billed_cost, 0.0);
  EXPECT_GT(on.metrics.on_demand_purchases, 0u);
  EXPECT_EQ(on.metrics.spot_purchases, 0u);
  EXPECT_EQ(on.metrics.spot_revocations, 0u);
  EXPECT_TRUE(on.market->spot_path.empty());  // zero market events scheduled
}

ScenarioConfig spot_web() {
  ScenarioConfig config = short_web();
  config.market.enabled = true;
  config.market.acquisition.spot_fraction = 1.0;
  config.market.acquisition.bid = 0.7;
  config.market.spot_price.spike_rate_per_hour = 4.0;  // force revocations
  config.reconciler.enabled = true;
  config.reconciler.interval = 60.0;
  return config;
}

TEST(MarketDeterminism, SameSeedYieldsByteIdenticalMarketCsv) {
  const RunOutput a = run_scenario(spot_web(), PolicySpec::adaptive(), 11);
  const RunOutput b = run_scenario(spot_web(), PolicySpec::adaptive(), 11);
  ASSERT_TRUE(a.market.has_value());
  ASSERT_TRUE(b.market.has_value());
  EXPECT_GT(a.metrics.spot_purchases, 0u);

  std::ostringstream csv_a, csv_b;
  write_market_csv(csv_a, *a.market);
  write_market_csv(csv_b, *b.market);
  EXPECT_GT(csv_a.str().size(), 0u);
  EXPECT_EQ(csv_a.str(), csv_b.str());
  EXPECT_EQ(a.metrics.billed_cost, b.metrics.billed_cost);
  EXPECT_EQ(a.metrics.spot_revocations, b.metrics.spot_revocations);
  EXPECT_EQ(a.metrics.simulated_events, b.metrics.simulated_events);
}

TEST(MarketDeterminism, SpotMarketNeverPerturbsTheWorkloadStream) {
  // The market seed is drawn after the workload/placement/fault seeds, so
  // the same base seed generates the same arrivals with the market on or
  // off — only serving-side outcomes may differ.
  const RunMetrics off =
      run_scenario(short_web(), PolicySpec::adaptive(), 13).metrics;
  const RunMetrics spot =
      run_scenario(spot_web(), PolicySpec::adaptive(), 13).metrics;
  EXPECT_EQ(off.generated, spot.generated);
}

TEST(MarketTelemetry, ObservationalMonitorsDoNotChangeMarketOutcomes) {
  TelemetryOptions opts;  // metrics registry + trace ring on
  const RunOutput plain = run_scenario(spot_web(), PolicySpec::adaptive(), 17);
  const RunOutput traced =
      run_scenario(spot_web(), PolicySpec::adaptive(), 17, opts);
  ASSERT_TRUE(plain.market.has_value());
  ASSERT_TRUE(traced.market.has_value());
  EXPECT_EQ(plain.metrics.billed_cost, traced.metrics.billed_cost);
  EXPECT_EQ(plain.metrics.spot_revocations, traced.metrics.spot_revocations);
  EXPECT_EQ(plain.metrics.revocation_kills, traced.metrics.revocation_kills);
  EXPECT_EQ(plain.metrics.simulated_events, traced.metrics.simulated_events);

  std::ostringstream csv_a, csv_b;
  write_market_csv(csv_a, *plain.market);
  write_market_csv(csv_b, *traced.market);
  EXPECT_EQ(csv_a.str(), csv_b.str());
}

}  // namespace
}  // namespace cloudprov
